//! Algorithm 1: PathSampling.
//!
//! Given an edge `(u, v)` and a path length `r`, pick a uniform split
//! `s ∈ [0, r-1]`, walk `s` steps from `u` and `r-1-s` steps from `v`, and
//! return the two walk endpoints. The returned pair is the endpoint pair
//! of a uniformly positioned `r`-step path passing through `(u, v)`, and
//! contributes one (weighted) sample to the sparsifier of
//! `Σ_r (D⁻¹A)^r`.
//!
//! The distributional fact the estimator rests on (proved in
//! `construct.rs` tests): picking a uniformly random *directed arc* and
//! applying this procedure lands on the ordered pair `(i, j)` with
//! probability `d_i · (D⁻¹A)^r_{ij} / (2m)` — independent of the split
//! point `s`, by reversibility of the walk.

use lightne_graph::{walk::walk, GraphOps, VertexId};
use lightne_utils::rng::XorShiftStream;

/// One two-sided path sample (Algorithm 1).
///
/// `r` must be ≥ 1; the walk takes `s` steps from `u` and `r-1-s` from
/// `v`, where `s` is drawn uniformly from `[0, r-1]`.
#[inline]
pub fn path_sample<G: GraphOps>(
    g: &G,
    u: VertexId,
    v: VertexId,
    r: usize,
    rng: &mut XorShiftStream,
) -> (VertexId, VertexId) {
    debug_assert!(r >= 1, "path length must be at least 1");
    let s = rng.bounded_usize(r);
    let u_end = walk(g, u, s, rng);
    let v_end = walk(g, v, r - 1 - s, rng);
    (u_end, v_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_graph::GraphBuilder;

    #[test]
    fn r_equals_one_returns_the_edge() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut rng = XorShiftStream::new(1, 0);
        for _ in 0..50 {
            assert_eq!(path_sample(&g, 1, 2, 1, &mut rng), (1, 2));
        }
    }

    #[test]
    fn endpoints_are_within_r_hops() {
        // On a path graph, endpoints of an r-step path through (u, u+1)
        // can be at distance at most r from the edge.
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let mut rng = XorShiftStream::new(2, 0);
        let r = 5;
        for _ in 0..500 {
            let (a, b) = path_sample(&g, 25, 26, r, &mut rng);
            assert!((a as i64 - 25).unsigned_abs() <= r as u64);
            assert!((b as i64 - 26).unsigned_abs() <= r as u64);
        }
    }

    #[test]
    fn parity_invariant_on_bipartite_graph() {
        // On a cycle of even length the graph is bipartite: the two
        // endpoints of an r-step path have endpoint-parity determined by r.
        let n = 10u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let mut rng = XorShiftStream::new(3, 0);
        for r in 1..=6 {
            for _ in 0..200 {
                let (a, b) = path_sample(&g, 0, 1, r, &mut rng);
                // endpoints of an r-edge path differ in parity iff r is odd
                let parity = (a as usize + b as usize) % 2;
                assert_eq!(parity, r % 2, "r={r}: ({a},{b})");
            }
        }
    }

    #[test]
    fn split_distribution_covers_both_sides() {
        // With r=3 on a long path, sometimes the left endpoint moves,
        // sometimes the right — both splits must occur.
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = GraphBuilder::from_edges(n as usize, &edges);
        let mut rng = XorShiftStream::new(4, 0);
        let (mut left_moved, mut right_moved) = (false, false);
        for _ in 0..500 {
            let (a, b) = path_sample(&g, 50, 51, 3, &mut rng);
            if a != 50 {
                left_moved = true;
            }
            if b != 51 {
                right_moved = true;
            }
        }
        assert!(left_moved && right_moved);
    }
}
