//! Degree-based edge downsampling (Section 3.2).
//!
//! The paper's headline algorithmic contribution: instead of keeping every
//! PathSampling trial, each trial for edge `e = (u, v)` survives a coin
//! flip with probability
//!
//! ```text
//! p_e = min(1, C · A_uv · (1/d_u + 1/d_v)),   C = log n
//! ```
//!
//! and surviving samples are up-weighted by `1/p_e`. By Theorem 3.1 this
//! keeps the sparsifier an unbiased Laplacian estimator; by Theorem 3.2
//! (Lovász) `1/d_u + 1/d_v` upper-bounds the effective resistance up to
//! the spectral gap, so the scheme inherits the spectral-sparsification
//! guarantee on well-connected graphs. The expected number of *kept*
//! samples per vertex is `O(C)`, i.e. `O(n log n)` total — the
//! `#edges/#vertices` sample-complexity reduction the paper reports.
//!
//! ## The PSNE-grade scheme ([`ProbScheme::Psne`])
//!
//! PSNE (arXiv 2408.02705) observes that sharper effective-resistance
//! estimates than the degree bound give better sparsifiers at the same
//! sample budget. This module's PSNE-grade variant tightens the Lovász
//! bound with local structure: the direct edge (conductance 1) sits in
//! parallel with one two-hop path (series conductance ½) per common
//! neighbor, so by Rayleigh monotonicity
//!
//! ```text
//! R_e  ≤  1 / (1 + cn(u,v)/2)  =  2 / (2 + cn(u,v))
//! ```
//!
//! where `cn(u, v) = |N(u) ∩ N(v)|`. Taking the minimum with the degree
//! bound yields
//!
//! ```text
//! p_e = min(1, C · min(1/d_u + 1/d_v, 2/(2 + cn(u,v))))
//! ```
//!
//! — never looser than the degree scheme, and strictly sharper on
//! triangle-dense edges, which are exactly the well-supported edges whose
//! samples are redundant. Unbiasedness (Theorem 3.1) holds for *any*
//! survival probability with `1/p_e` re-weighting, so the estimator
//! guarantee is unchanged.

use lightne_graph::{GraphOps, VertexId};

/// Which edge-survival probability the downsampling coin uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbScheme {
    /// The paper's degree bound `min(1, C·(1/d_u + 1/d_v))` (retained
    /// default; byte-identical to the pre-scheme behavior).
    #[default]
    Degree,
    /// The PSNE-grade bound sharpened by common neighbors:
    /// `min(1, C·min(1/d_u + 1/d_v, 2/(2 + cn(u,v))))`.
    Psne,
}

impl ProbScheme {
    /// Both schemes, in evaluation order.
    pub const ALL: [ProbScheme; 2] = [ProbScheme::Degree, ProbScheme::Psne];

    /// CLI / report name of the scheme.
    pub fn name(self) -> &'static str {
        match self {
            ProbScheme::Degree => "degree",
            ProbScheme::Psne => "psne",
        }
    }

    /// Parses a (case-insensitive) scheme name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "degree" => Some(ProbScheme::Degree),
            "psne" => Some(ProbScheme::Psne),
            _ => None,
        }
    }
}

/// The downsampling constant `C`. The paper sets `C = log n`.
pub fn default_c(n: usize) -> f64 {
    (n.max(2) as f64).ln()
}

/// Survival probability `p_e` for the (unweighted) edge `(u, v)`.
#[inline]
pub fn edge_probability(deg_u: usize, deg_v: usize, c: f64) -> f64 {
    debug_assert!(deg_u > 0 && deg_v > 0, "edge endpoints must have degree >= 1");
    let r_bound = 1.0 / deg_u as f64 + 1.0 / deg_v as f64;
    (c * r_bound).min(1.0)
}

/// Number of common neighbors `|N(u) ∩ N(v)|` by sorted-list merge.
/// Adjacency lists are ascending on every graph backend (CSR invariant),
/// so the two collected lists merge in `O(d_u + d_v)`.
pub fn common_neighbors<G: GraphOps>(g: &G, u: VertexId, v: VertexId) -> usize {
    let mut nu: Vec<VertexId> = Vec::with_capacity(g.degree(u));
    g.for_each_neighbor(u, &mut |x| nu.push(x));
    let mut nv: Vec<VertexId> = Vec::with_capacity(g.degree(v));
    g.for_each_neighbor(v, &mut |x| nv.push(x));
    let (mut i, mut j, mut cn) = (0usize, 0usize, 0usize);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                cn += 1;
                i += 1;
                j += 1;
            }
        }
    }
    cn
}

/// PSNE-grade survival probability: the degree bound sharpened by the
/// common-neighbor resistance bound `2/(2 + cn)` (see the module docs).
/// Never exceeds [`edge_probability`] for the same endpoints.
#[inline]
pub fn psne_edge_probability(deg_u: usize, deg_v: usize, common: usize, c: f64) -> f64 {
    debug_assert!(deg_u > 0 && deg_v > 0, "edge endpoints must have degree >= 1");
    let degree_bound = 1.0 / deg_u as f64 + 1.0 / deg_v as f64;
    let triangle_bound = 2.0 / (2.0 + common as f64);
    (c * degree_bound.min(triangle_bound)).min(1.0)
}

/// Survival probability for edge `(u, v)` under the given scheme. The
/// `Degree` arm calls [`edge_probability`] with no extra float work, so
/// its output is bit-identical to the historical (pre-scheme) sampler.
#[inline]
pub fn scheme_edge_probability<G: GraphOps>(
    scheme: ProbScheme,
    g: &G,
    u: VertexId,
    v: VertexId,
    c: f64,
) -> f64 {
    match scheme {
        ProbScheme::Degree => edge_probability(g.degree(u), g.degree(v), c),
        ProbScheme::Psne => {
            psne_edge_probability(g.degree(u), g.degree(v), common_neighbors(g, u, v), c)
        }
    }
}

/// Expected number of kept samples if `total_trials` are spread uniformly
/// over the arcs of `g` with survival probability `p_e` each (used to
/// pre-size the hash table).
pub fn expected_kept_samples<G: GraphOps>(
    g: &G,
    total_trials: u64,
    c: f64,
    scheme: ProbScheme,
) -> f64 {
    let arcs = g.num_arcs() as f64;
    if arcs == 0.0 {
        return 0.0;
    }
    let per_arc = total_trials as f64 / arcs;
    let sum_pe: f64 = (0..g.num_vertices() as VertexId)
        .map(|u| {
            let mut acc = 0.0;
            g.for_each_neighbor(u, &mut |v| {
                acc += scheme_edge_probability(scheme, g, u, v, c);
            });
            acc
        })
        .sum();
    per_arc * sum_pe
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::{erdos_renyi, watts_strogatz};
    use lightne_graph::{CompressedGraph, Graph, GraphBuilder, V2Graph};

    #[test]
    fn probability_clamped_to_one() {
        assert_eq!(edge_probability(1, 1, 5.0), 1.0);
        assert_eq!(edge_probability(2, 2, 10.0), 1.0);
    }

    #[test]
    fn probability_formula() {
        // C=1, degrees 4 and 4 → p = 1/4 + 1/4 = 0.5
        assert!((edge_probability(4, 4, 1.0) - 0.5).abs() < 1e-12);
        // C=2, degrees 10 and 40 → 2*(0.1+0.025) = 0.25
        assert!((edge_probability(10, 40, 2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probability_decreases_with_degree() {
        let c = 3.0;
        assert!(edge_probability(100, 100, c) < edge_probability(10, 10, c));
    }

    #[test]
    fn default_c_is_log_n() {
        assert!((default_c(1000) - (1000f64).ln()).abs() < 1e-12);
        // Guard against log(0)/log(1).
        assert!(default_c(0) > 0.0);
        assert!(default_c(1) > 0.0);
    }

    #[test]
    fn kept_samples_scale_like_n_log_n() {
        // Per the paper: Σ_v A_uv/d_u = 1 per vertex, so the kept-sample
        // mass is ~ 2·C·n per unit of per-arc trial density.
        let g = erdos_renyi(2000, 40_000, 1);
        let c = default_c(2000);
        let trials = g.num_arcs() as u64; // one trial per arc
        let kept = expected_kept_samples(&g, trials, c, ProbScheme::Degree);
        let predicted = 2.0 * c * 2000.0;
        assert!(
            (kept - predicted).abs() / predicted < 0.05,
            "kept {kept} vs predicted {predicted}"
        );
        // And it is far below the trial count (the whole point).
        assert!(kept < trials as f64 / 2.0);
    }

    #[test]
    fn scheme_names_round_trip() {
        for s in ProbScheme::ALL {
            assert_eq!(ProbScheme::parse(s.name()), Some(s));
            assert_eq!(ProbScheme::parse(&s.name().to_uppercase()), Some(s));
        }
        assert_eq!(ProbScheme::parse("nope"), None);
        assert_eq!(ProbScheme::default(), ProbScheme::Degree);
    }

    /// Both schemes produce valid probabilities on every edge, and the
    /// PSNE bound is never looser than the degree bound.
    #[test]
    fn both_schemes_are_valid_distributions() {
        // Watts–Strogatz at low rewiring is triangle-dense, so the PSNE
        // bound actually bites; Erdős–Rényi exercises the cn = 0 regime.
        for g in [watts_strogatz(200, 6, 0.1, 3), erdos_renyi(200, 1_200, 4)] {
            let c = default_c(g.num_vertices());
            for u in 0..g.num_vertices() as VertexId {
                for &v in g.neighbors(u) {
                    let p_deg = scheme_edge_probability(ProbScheme::Degree, &g, u, v, c);
                    let p_psne = scheme_edge_probability(ProbScheme::Psne, &g, u, v, c);
                    assert!(p_deg > 0.0 && p_deg <= 1.0, "degree p out of range: {p_deg}");
                    assert!(p_psne > 0.0 && p_psne <= 1.0, "psne p out of range: {p_psne}");
                    assert!(p_psne <= p_deg, "psne ({p_psne}) looser than degree ({p_deg})");
                }
            }
            // Expected kept mass is finite, positive, and ordered the
            // same way (psne keeps no more than degree).
            let trials = g.num_arcs() as u64;
            let k_deg = expected_kept_samples(&g, trials, c, ProbScheme::Degree);
            let k_psne = expected_kept_samples(&g, trials, c, ProbScheme::Psne);
            assert!(k_deg > 0.0 && k_deg.is_finite());
            assert!(k_psne > 0.0 && k_psne <= k_deg);
        }
    }

    /// With no common neighbors the PSNE bound degenerates to the degree
    /// bound *bitwise* (the `2/(2+0) = 1` arm never wins the min against
    /// `1/d_u + 1/d_v ≤ 2`... unless both are exactly 1, where they tie).
    #[test]
    fn psne_matches_degree_bitwise_on_triangle_free_edges() {
        // A cycle: every edge has cn = 0 and degrees 2/2.
        let edges: Vec<(u32, u32)> = (0..32u32).map(|i| (i, (i + 1) % 32)).collect();
        let g = GraphBuilder::from_edges(32, &edges);
        let c = 0.2; // keep p below the clamp
        for u in 0..32u32 {
            for &v in g.neighbors(u) {
                assert_eq!(common_neighbors(&g, u, v), 0);
                let a = scheme_edge_probability(ProbScheme::Degree, &g, u, v, c);
                let b = scheme_edge_probability(ProbScheme::Psne, &g, u, v, c);
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Common-neighbor counts agree across every graph backend at the
    /// compressed block-size boundaries (degrees 0, 64 and 65 — the same
    /// edge cases the `CompressedGraph` decoder tests pin).
    #[test]
    fn common_neighbors_agree_across_backends_at_block_boundaries() {
        // Hub 0 → {2..=66} (degree 65), hub 1 → {2..=65} (degree 64),
        // vertex 67 isolated (degree 0), plus a clique among {2,3,4} so
        // some pairs have two-sided structure.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 2..=66u32 {
            edges.push((0, v));
        }
        for v in 2..=65u32 {
            edges.push((1, v));
        }
        edges.extend_from_slice(&[(2, 3), (2, 4), (3, 4)]);
        let g = GraphBuilder::from_edges(68, &edges);
        assert_eq!(g.degree(0), 65);
        assert_eq!(g.degree(1), 64);
        assert_eq!(g.degree(67), 0);

        let v1 = CompressedGraph::from_graph(&g);
        let v2 = V2Graph::from_graph(&g, lightne_graph::Codec::parse("arice").unwrap());
        let check = |u: u32, v: u32, want: usize| {
            assert_eq!(common_neighbors(&g, u, v), want, "csr ({u},{v})");
            assert_eq!(common_neighbors(&v1, u, v), want, "v1 ({u},{v})");
            assert_eq!(common_neighbors(&v2, u, v), want, "v2 ({u},{v})");
        };
        check(0, 1, 64); // shared {2..=65}
        check(2, 3, 3); // shared {0, 1, 4}
        check(0, 67, 0); // isolated endpoint
        check(67, 67, 0);
        // And the probability formula sees identical degrees via every
        // backend, so the scheme output is bit-identical across them.
        let c = default_c(68);
        for (u, v) in [(0u32, 2u32), (1, 2), (2, 3)] {
            let a = scheme_edge_probability(ProbScheme::Psne, &g, u, v, c);
            let b = scheme_edge_probability(ProbScheme::Psne, &v1, u, v, c);
            let d = scheme_edge_probability(ProbScheme::Psne, &v2, u, v, c);
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), d.to_bits());
        }
    }

    /// Hand-computed PSNE values pin the formula.
    #[test]
    fn psne_probability_formula() {
        // cn = 2: triangle bound 2/4 = 0.5 < degree bound 1/4+1/4 = 0.5 →
        // tie; C = 1 → p = 0.5.
        assert!((psne_edge_probability(4, 4, 2, 1.0) - 0.5).abs() < 1e-12);
        // cn = 6: triangle bound 2/8 = 0.25, degree bound 0.5 → 0.25.
        assert!((psne_edge_probability(4, 4, 6, 1.0) - 0.25).abs() < 1e-12);
        // cn = 0: degenerates to the degree formula.
        assert_eq!(
            psne_edge_probability(10, 40, 0, 2.0).to_bits(),
            edge_probability(10, 40, 2.0).to_bits()
        );
        // Clamp still applies.
        assert_eq!(psne_edge_probability(1, 1, 0, 5.0), 1.0);
    }

    /// The retained degree scheme is byte-identical whether selected
    /// explicitly or by default (the seed behavior).
    #[test]
    fn degree_scheme_probabilities_unchanged_by_scheme_plumbing() {
        let g: Graph = erdos_renyi(150, 1_500, 9);
        let c = default_c(150);
        for u in 0..150u32 {
            for &v in g.neighbors(u) {
                let direct = edge_probability(g.degree(u), g.degree(v), c);
                let via_scheme = scheme_edge_probability(ProbScheme::Degree, &g, u, v, c);
                assert_eq!(direct.to_bits(), via_scheme.to_bits());
            }
        }
    }
}
