//! Degree-based edge downsampling (Section 3.2).
//!
//! The paper's headline algorithmic contribution: instead of keeping every
//! PathSampling trial, each trial for edge `e = (u, v)` survives a coin
//! flip with probability
//!
//! ```text
//! p_e = min(1, C · A_uv · (1/d_u + 1/d_v)),   C = log n
//! ```
//!
//! and surviving samples are up-weighted by `1/p_e`. By Theorem 3.1 this
//! keeps the sparsifier an unbiased Laplacian estimator; by Theorem 3.2
//! (Lovász) `1/d_u + 1/d_v` upper-bounds the effective resistance up to
//! the spectral gap, so the scheme inherits the spectral-sparsification
//! guarantee on well-connected graphs. The expected number of *kept*
//! samples per vertex is `O(C)`, i.e. `O(n log n)` total — the
//! `#edges/#vertices` sample-complexity reduction the paper reports.

use lightne_graph::{GraphOps, VertexId};

/// The downsampling constant `C`. The paper sets `C = log n`.
pub fn default_c(n: usize) -> f64 {
    (n.max(2) as f64).ln()
}

/// Survival probability `p_e` for the (unweighted) edge `(u, v)`.
#[inline]
pub fn edge_probability(deg_u: usize, deg_v: usize, c: f64) -> f64 {
    debug_assert!(deg_u > 0 && deg_v > 0, "edge endpoints must have degree >= 1");
    let r_bound = 1.0 / deg_u as f64 + 1.0 / deg_v as f64;
    (c * r_bound).min(1.0)
}

/// Expected number of kept samples if `total_trials` are spread uniformly
/// over the arcs of `g` with survival probability `p_e` each (used to
/// pre-size the hash table).
pub fn expected_kept_samples<G: GraphOps>(g: &G, total_trials: u64, c: f64) -> f64 {
    let arcs = g.num_arcs() as f64;
    if arcs == 0.0 {
        return 0.0;
    }
    let per_arc = total_trials as f64 / arcs;
    let sum_pe: f64 = (0..g.num_vertices() as VertexId)
        .map(|u| {
            let du = g.degree(u);
            let mut acc = 0.0;
            g.for_each_neighbor(u, &mut |v| {
                acc += edge_probability(du, g.degree(v), c);
            });
            acc
        })
        .sum();
    per_arc * sum_pe
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_gen::generators::erdos_renyi;

    #[test]
    fn probability_clamped_to_one() {
        assert_eq!(edge_probability(1, 1, 5.0), 1.0);
        assert_eq!(edge_probability(2, 2, 10.0), 1.0);
    }

    #[test]
    fn probability_formula() {
        // C=1, degrees 4 and 4 → p = 1/4 + 1/4 = 0.5
        assert!((edge_probability(4, 4, 1.0) - 0.5).abs() < 1e-12);
        // C=2, degrees 10 and 40 → 2*(0.1+0.025) = 0.25
        assert!((edge_probability(10, 40, 2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probability_decreases_with_degree() {
        let c = 3.0;
        assert!(edge_probability(100, 100, c) < edge_probability(10, 10, c));
    }

    #[test]
    fn default_c_is_log_n() {
        assert!((default_c(1000) - (1000f64).ln()).abs() < 1e-12);
        // Guard against log(0)/log(1).
        assert!(default_c(0) > 0.0);
        assert!(default_c(1) > 0.0);
    }

    #[test]
    fn kept_samples_scale_like_n_log_n() {
        // Per the paper: Σ_v A_uv/d_u = 1 per vertex, so the kept-sample
        // mass is ~ 2·C·n per unit of per-arc trial density.
        let g = erdos_renyi(2000, 40_000, 1);
        let c = default_c(2000);
        let trials = g.num_arcs() as u64; // one trial per arc
        let kept = expected_kept_samples(&g, trials, c);
        let predicted = 2.0 * c * 2000.0;
        assert!(
            (kept - predicted).abs() / predicted < 0.05,
            "kept {kept} vs predicted {predicted}"
        );
        // And it is far below the trial count (the whole point).
        assert!(kept < trials as f64 / 2.0);
    }
}
