//! Weighted-graph sparsifier construction.
//!
//! The weighted generalization of Algorithms 1–2, exactly as the paper's
//! theory states them (Theorems 3.1–3.2 are written for weighted `A`):
//!
//! * arcs receive trials **proportionally to their weight** (a uniform
//!   weighted-edge draw), walks move to neighbors proportionally to edge
//!   weight, so one trial lands on the ordered pair `(i, j)` with
//!   probability `d_i (D⁻¹A)^r_{ij} / vol(G)` — the same reversibility
//!   identity as the unweighted case with weighted degrees;
//! * downsampling uses the paper's full formula
//!   `p_e = min(1, C·A_uv·(1/d_u + 1/d_v))` with weighted degrees;
//! * the NetMF inversion is unchanged in form:
//!   `trunc_log( vol² · w(i,j) / (2·b·M·d_i·d_j) )` over weighted
//!   quantities.

use crate::downsample::{default_c, ProbScheme};
use lightne_graph::weighted::WeightedGraph;
use lightne_hash::{ConcurrentEdgeTable, EdgeAggregator};
use lightne_linalg::CsrMatrix;
use lightne_utils::rng::XorShiftStream;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::construct::{SamplerConfig, SamplerError, SamplerStats, SparsifierOutput};
use crate::netmf::{netmf_factor, trunc_log_entry};

/// Weighted analogue of the PSNE bound: the direct edge (conductance
/// `w_uv`) in parallel with every two-hop path through a common
/// neighbour `x` (series conductance `w_ux·w_xv/(w_ux+w_xv)`) upper
/// bounds the effective conductance from below, so
/// `R_e <= 1 / (w_uv + Σ_x w_ux·w_xv/(w_ux+w_xv))` by Rayleigh
/// monotonicity. Both adjacency arrays are sorted by neighbour id, so a
/// two-pointer merge finds the common neighbours.
fn weighted_psne_probability(g: &WeightedGraph, u: u32, v: u32, w_uv: f32, c: f64) -> f64 {
    let (nu, wu) = g.neighbors(u);
    let (nv, wv) = g.neighbors(v);
    let mut conductance = w_uv as f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (a, b) = (wu[i] as f64, wv[j] as f64);
                if a + b > 0.0 {
                    conductance += a * b / (a + b);
                }
                i += 1;
                j += 1;
            }
        }
    }
    let degree_bound = 1.0 / g.weighted_degree(u) + 1.0 / g.weighted_degree(v);
    (c * w_uv as f64 * degree_bound.min(1.0 / conductance)).min(1.0)
}

/// Weighted PathSampling (Algorithm 1 with weight-proportional walks).
#[inline]
pub fn weighted_path_sample(
    g: &WeightedGraph,
    u: u32,
    v: u32,
    r: usize,
    rng: &mut XorShiftStream,
) -> (u32, u32) {
    debug_assert!(r >= 1);
    let s = rng.bounded_usize(r);
    (g.walk(u, s, rng), g.walk(v, r - 1 - s, rng))
}

/// Expected distinct-entry count for pre-sizing the weighted table.
pub(crate) fn weighted_distinct_guess(g: &WeightedGraph, cfg: &SamplerConfig) -> usize {
    (cfg.samples as usize).min(g.num_vertices() * 64).max(1024)
}

/// Runs the weighted Algorithm 2 over `g`, depositing weighted samples
/// into `agg` (the weighted analogue of [`crate::construct::sample_into`],
/// generic over the aggregation strategy).
///
/// # Errors
/// [`SamplerError::ZeroWindow`] if `cfg.window == 0`;
/// [`SamplerError::EmptyGraph`] if `g` has zero volume.
pub fn weighted_sample_into<A: EdgeAggregator>(
    g: &WeightedGraph,
    cfg: &SamplerConfig,
    agg: &A,
) -> Result<SamplerStats, SamplerError> {
    if cfg.window < 1 {
        return Err(SamplerError::ZeroWindow);
    }
    let vol = g.volume();
    if vol <= 0.0 {
        return Err(SamplerError::EmptyGraph);
    }
    let c = cfg.c_factor.unwrap_or_else(|| default_c(g.num_vertices()));
    let t = cfg.window;
    // Expected trials for arc (u,v): M · w_uv / vol (weight-proportional).
    let rate = cfg.samples as f64 / vol;

    let trials_ctr = AtomicU64::new(0);
    let kept_ctr = AtomicU64::new(0);

    g.map_arcs(|u, v, w, arc_idx| {
        let mut rng = XorShiftStream::new(cfg.seed, arc_idx);
        let expected = rate * w as f64;
        let n_e = expected.floor() as u64 + u64::from(rng.bernoulli(expected.fract()));
        if n_e == 0 {
            return;
        }
        let p_e = if cfg.downsample {
            match cfg.prob {
                ProbScheme::Degree => {
                    (c * w as f64 * (1.0 / g.weighted_degree(u) + 1.0 / g.weighted_degree(v)))
                        .min(1.0)
                }
                ProbScheme::Psne => weighted_psne_probability(g, u, v, w, c),
            }
        } else {
            1.0
        };
        let add_w = (1.0 / p_e) as f32;
        let mut kept = 0u64;
        for _ in 0..n_e {
            if p_e < 1.0 && !rng.bernoulli(p_e) {
                continue;
            }
            kept += 1;
            let r = 1 + rng.bounded_usize(t);
            let (a, b) = weighted_path_sample(g, u, v, r, &mut rng);
            agg.add(a, b, add_w);
            agg.add(b, a, add_w);
        }
        // ordering: advisory stats counters; commutative adds, read only
        // after the parallel region joins (join is the synchronisation).
        trials_ctr.fetch_add(n_e, Ordering::Relaxed);
        kept_ctr.fetch_add(kept, Ordering::Relaxed);
    });

    // ordering: single-threaded here, post-join reads of the counters.
    Ok(SamplerStats {
        trials: trials_ctr.load(Ordering::Relaxed),
        kept: kept_ctr.load(Ordering::Relaxed),
        distinct_entries: agg.distinct_edges(),
        aggregator_bytes: agg.memory_bytes(),
    })
}

/// Runs the weighted Algorithm 2 and returns the aggregated COO triples
/// plus statistics.
///
/// # Errors
/// Propagates [`SamplerError`] from [`weighted_sample_into`].
pub fn build_weighted_sparsifier(g: &WeightedGraph, cfg: &SamplerConfig) -> SparsifierOutput {
    let table = ConcurrentEdgeTable::with_expected(weighted_distinct_guess(g, cfg));
    let stats = weighted_sample_into(g, cfg, &table)?;
    Ok((table.into_coo(), stats))
}

/// Converts aggregated weighted samples to the NetMF matrix (weighted
/// version of [`crate::sparsifier_to_netmf`]).
pub fn weighted_sparsifier_to_netmf(
    g: &WeightedGraph,
    coo: Vec<(u32, u32, f32)>,
    total_samples: u64,
    b: f64,
) -> CsrMatrix {
    let n = g.num_vertices();
    let factor = netmf_factor(g.volume(), total_samples, b);
    let entries: Vec<(u32, u32, f32)> = coo
        .into_par_iter()
        .filter_map(|(i, j, w)| {
            trunc_log_entry(factor, g.weighted_degree(i), g.weighted_degree(j), w)
                .map(|val| (i, j, val))
        })
        .collect();
    CsrMatrix::from_coo(n, n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightne_linalg::DenseMatrix;

    /// Dense weighted transition matrix D⁻¹A.
    fn transition(g: &WeightedGraph) -> DenseMatrix {
        let n = g.num_vertices();
        let mut p = DenseMatrix::zeros(n, n);
        for u in 0..n as u32 {
            let d = g.weighted_degree(u);
            if d == 0.0 {
                continue;
            }
            let (nb, ws) = g.neighbors(u);
            for (&v, &w) in nb.iter().zip(ws) {
                p.set(u as usize, v as usize, (w as f64 / d) as f32);
            }
        }
        p
    }

    fn walk_sum(g: &WeightedGraph, t: usize) -> DenseMatrix {
        let p = transition(g);
        let mut power = p.clone();
        let mut sum = p.clone();
        for _ in 1..t {
            power = power.matmul(&p);
            sum.axpy(1.0, &power);
        }
        sum
    }

    fn small_weighted(seed: u64) -> WeightedGraph {
        let mut rng = XorShiftStream::new(seed, 0);
        let mut edges = Vec::new();
        for u in 0..30u32 {
            for _ in 0..5 {
                let v = rng.bounded(30) as u32;
                if v != u {
                    edges.push((u, v, 0.5 + 2.0 * rng.unit_f32()));
                }
            }
        }
        WeightedGraph::from_edges(30, &edges)
    }

    #[test]
    fn weighted_estimator_is_unbiased() {
        // E[w(i,j)] = 2M/(vol·T) · d_i · Σ_r P^r_ij.
        let g = small_weighted(1);
        let cfg = SamplerConfig {
            window: 3,
            samples: 2_000_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 2,
        };
        let (coo, _) = build_weighted_sparsifier(&g, &cfg).unwrap();
        let n = g.num_vertices();
        let mut got = DenseMatrix::zeros(n, n);
        for (i, j, w) in coo {
            got.set(i as usize, j as usize, got.get(i as usize, j as usize) + w);
        }
        let exact = walk_sum(&g, cfg.window);
        let scale = 2.0 * cfg.samples as f64 / (g.volume() * cfg.window as f64);
        let mut err = 0.0;
        let mut reference = 0.0;
        for i in 0..n {
            let di = g.weighted_degree(i as u32);
            for j in 0..n {
                let want = scale * di * exact.get(i, j) as f64;
                err += (got.get(i, j) as f64 - want).abs();
                reference += want;
            }
        }
        let rel = err / reference;
        assert!(rel < 0.05, "weighted estimator error {rel}");
    }

    #[test]
    fn downsampling_remains_unbiased_weighted() {
        let g = small_weighted(3);
        let cfg = SamplerConfig {
            window: 3,
            samples: 2_000_000,
            downsample: true,
            c_factor: Some(0.3),
            prob: ProbScheme::Degree,
            seed: 4,
        };
        let (coo, stats) = build_weighted_sparsifier(&g, &cfg).unwrap();
        assert!(stats.kept < stats.trials, "downsampling must drop trials");
        let n = g.num_vertices();
        let mut got = DenseMatrix::zeros(n, n);
        for (i, j, w) in coo {
            got.set(i as usize, j as usize, got.get(i as usize, j as usize) + w);
        }
        let exact = walk_sum(&g, cfg.window);
        let scale = 2.0 * cfg.samples as f64 / (g.volume() * cfg.window as f64);
        let mut err = 0.0;
        let mut reference = 0.0;
        for i in 0..n {
            let di = g.weighted_degree(i as u32);
            for j in 0..n {
                let want = scale * di * exact.get(i, j) as f64;
                err += (got.get(i, j) as f64 - want).abs();
                reference += want;
            }
        }
        let rel = err / reference;
        assert!(rel < 0.12, "downsampled weighted estimator error {rel}");
    }

    #[test]
    fn psne_downsampling_remains_unbiased_weighted() {
        // The 1/p_e reweighting makes the estimator unbiased for *any*
        // valid p, so swapping in the sharper PSNE bound must not move
        // the expectation (Theorem 3.1).
        let g = small_weighted(3);
        let cfg = SamplerConfig {
            window: 3,
            samples: 2_000_000,
            downsample: true,
            c_factor: Some(0.3),
            prob: ProbScheme::Psne,
            seed: 4,
        };
        let (coo, stats) = build_weighted_sparsifier(&g, &cfg).unwrap();
        assert!(stats.kept < stats.trials, "downsampling must drop trials");
        let n = g.num_vertices();
        let mut got = DenseMatrix::zeros(n, n);
        for (i, j, w) in coo {
            got.set(i as usize, j as usize, got.get(i as usize, j as usize) + w);
        }
        let exact = walk_sum(&g, cfg.window);
        let scale = 2.0 * cfg.samples as f64 / (g.volume() * cfg.window as f64);
        let mut err = 0.0;
        let mut reference = 0.0;
        for i in 0..n {
            let di = g.weighted_degree(i as u32);
            for j in 0..n {
                let want = scale * di * exact.get(i, j) as f64;
                err += (got.get(i, j) as f64 - want).abs();
                reference += want;
            }
        }
        let rel = err / reference;
        assert!(rel < 0.15, "psne-downsampled weighted estimator error {rel}");
    }

    #[test]
    fn weighted_psne_bound_never_looser_than_degree() {
        let g = small_weighted(11);
        let c = 0.4;
        g.map_arcs(|u, v, w, _| {
            let degree =
                (c * w as f64 * (1.0 / g.weighted_degree(u) + 1.0 / g.weighted_degree(v))).min(1.0);
            let psne = weighted_psne_probability(&g, u, v, w, c);
            assert!(psne > 0.0 && psne <= 1.0, "invalid probability {psne}");
            assert!(psne <= degree + 1e-12, "psne {psne} looser than degree {degree}");
        });
    }

    #[test]
    fn unit_weights_match_unweighted_sampler_statistics() {
        // With all weights 1 the weighted machinery must reproduce the
        // unweighted estimator's expectations (same trials, same totals).
        use lightne_gen::generators::erdos_renyi;
        let gu = erdos_renyi(100, 800, 5);
        let gw = WeightedGraph::from_unweighted(&gu);
        let cfg = SamplerConfig {
            window: 4,
            samples: 400_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 6,
        };
        let (coo_w, stats_w) = build_weighted_sparsifier(&gw, &cfg).unwrap();
        let (coo_u, stats_u) = crate::construct::build_sparsifier(&gu, &cfg).unwrap();
        let rel = (stats_w.trials as f64 - stats_u.trials as f64).abs() / stats_u.trials as f64;
        assert!(rel < 0.05, "trial counts diverge: {} vs {}", stats_w.trials, stats_u.trials);
        let sum = |coo: &[(u32, u32, f32)]| coo.iter().map(|&(_, _, w)| w as f64).sum::<f64>();
        let (sw, su) = (sum(&coo_w), sum(&coo_u));
        assert!((sw - su).abs() / su < 0.02, "total mass diverges: {sw} vs {su}");
    }

    #[test]
    fn netmf_conversion_prunes_and_is_positive() {
        let g = small_weighted(7);
        let cfg = SamplerConfig {
            window: 3,
            samples: 300_000,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 8,
        };
        let (coo, _) = build_weighted_sparsifier(&g, &cfg).unwrap();
        let m = weighted_sparsifier_to_netmf(&g, coo, cfg.samples, 1.0);
        assert!(m.nnz() > 0);
        for i in 0..g.num_vertices() {
            let (_, vals) = m.row(i);
            assert!(vals.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn heavier_edges_get_more_trials() {
        // One heavy edge (w=50) among unit edges should receive ~50x the
        // samples of a unit edge at the same endpoints' locality.
        let g =
            WeightedGraph::from_edges(4, &[(0, 1, 50.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let cfg = SamplerConfig {
            window: 1,
            samples: 500_000,
            downsample: false,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 9,
        };
        let (coo, _) = build_weighted_sparsifier(&g, &cfg).unwrap();
        // With T=1 every sample is the edge itself.
        let get = |a: u32, b: u32| {
            coo.iter()
                .find(|&&(u, v, _)| u == a && v == b)
                .map(|&(_, _, w)| w as f64)
                .unwrap_or(0.0)
        };
        let heavy = get(0, 1);
        let light = get(1, 2);
        assert!(
            (heavy / light - 50.0).abs() < 5.0,
            "heavy/light sample ratio {} should be ≈ 50",
            heavy / light
        );
    }
}
