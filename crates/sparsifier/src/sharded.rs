//! The sharded sparsify→factorize data path.
//!
//! The classic path materializes three full-size intermediates: the global
//! hash table, the drained COO vector, and the CSR built from it after a
//! global sort. This module routes the same samples through a
//! [`ShardedEdgeTable`] instead and drains each shard *directly* into its
//! contiguous CSR row block, with the NetMF truncated-log transform fused
//! into the drain:
//!
//! ```text
//! sample ──▶ N per-shard tables ──drain+sort+trunc_log──▶ row-blocked CSR
//! ```
//!
//! No global COO is ever built and no global sort runs: shard `s` owns the
//! source-vertex range `[lo_s, hi_s)`, so per-shard packed-key sorts
//! concatenate into the globally sorted entry order for free.
//!
//! **Byte-identity with the classic path.** Three facts make the sharded
//! output bitwise identical to `build_sparsifier` → `sparsifier_to_netmf`
//! at any thread and shard count: (1) per-key weights are fixed-point u64
//! sums, independent of insertion interleaving and of which table held the
//! key; (2) the concatenated per-shard sort order equals `from_coo`'s
//! global sort order; (3) the per-entry transform is the shared
//! `trunc_log_entry`, applied entrywise with no cross-entry arithmetic.
//! `tests/sharded_path.rs` at the workspace root asserts this end to end.

use crate::construct::{distinct_guess, sample_into, SamplerConfig, SamplerError, SamplerStats};
use crate::netmf::{netmf_factor, trunc_log_entry};
use crate::weighted::{weighted_distinct_guess, weighted_sample_into};
use lightne_graph::weighted::WeightedGraph;
use lightne_graph::GraphOps;
use lightne_hash::ShardedEdgeTable;
use lightne_linalg::CsrMatrix;

/// Resolves a configured shard count: `0` means the automatic heuristic.
pub fn resolve_shards(configured: usize, n_vertices: usize) -> usize {
    if configured == 0 {
        ShardedEdgeTable::auto_shards(n_vertices)
    } else {
        configured
    }
}

/// Pre-sizes each shard by its share of the degree mass: a shard's
/// expected distinct-entry count is proportional to the total degree of
/// the source vertices it owns, since trials land on source `u` with
/// probability `d_u / vol`. Under a skewed (power-law) degree ordering
/// this stops the heavy low-id shards from resizing their way up from a
/// uniform 1/N guess. Capacities never affect accumulated values.
fn degree_mass_expectations<D: Fn(u32) -> f64>(
    n: usize,
    shards: usize,
    expected_total: usize,
    degree: D,
) -> Vec<usize> {
    let ranges = ShardedEdgeTable::shard_ranges(n, shards);
    let masses: Vec<f64> =
        ranges.iter().map(|r| r.clone().map(|u| degree(u).max(0.0)).sum()).collect();
    let total: f64 = masses.iter().sum();
    if total <= 0.0 {
        return vec![expected_total.div_ceil(ranges.len()); ranges.len()];
    }
    masses.iter().map(|m| (expected_total as f64 * m / total).ceil() as usize).collect()
}

/// Runs Algorithm 2 into a [`ShardedEdgeTable`] and returns the live
/// table (for the fused drain of [`sharded_to_netmf`]) plus statistics.
/// `shards == 0` selects the automatic heuristic.
///
/// # Errors
/// Propagates [`SamplerError`] from [`sample_into`].
pub fn build_sharded_sparsifier<G: GraphOps>(
    g: &G,
    cfg: &SamplerConfig,
    shards: usize,
) -> Result<(ShardedEdgeTable, SamplerStats), SamplerError> {
    let n = g.num_vertices();
    let shards = resolve_shards(shards, n);
    let expectations =
        degree_mass_expectations(n, shards, distinct_guess(g, cfg), |u| g.degree(u) as f64);
    let table = ShardedEdgeTable::with_expectations(n, shards, &expectations);
    let stats = sample_into(g, cfg, &table)?;
    Ok((table, stats))
}

/// Weighted analogue of [`build_sharded_sparsifier`].
///
/// # Errors
/// Propagates [`SamplerError`] from
/// [`weighted_sample_into`](crate::weighted::weighted_sample_into).
pub fn build_weighted_sharded_sparsifier(
    g: &WeightedGraph,
    cfg: &SamplerConfig,
    shards: usize,
) -> Result<(ShardedEdgeTable, SamplerStats), SamplerError> {
    let n = g.num_vertices();
    let shards = resolve_shards(shards, n);
    let expectations = degree_mass_expectations(n, shards, weighted_distinct_guess(g, cfg), |u| {
        g.weighted_degree(u)
    });
    let table = ShardedEdgeTable::with_expectations(n, shards, &expectations);
    let stats = weighted_sample_into(g, cfg, &table)?;
    Ok((table, stats))
}

/// Fused drain: converts the sharded aggregate straight into the
/// truncated-log NetMF matrix. Each shard is sorted and transformed in
/// parallel and assembled as a contiguous CSR row block — the
/// untransformed sparsifier matrix never exists as a whole.
pub fn sharded_to_netmf<G: GraphOps>(
    g: &G,
    table: ShardedEdgeTable,
    total_samples: u64,
    b: f64,
) -> CsrMatrix {
    let n = g.num_vertices();
    let degrees: Vec<f64> = (0..n).map(|v| g.degree(v as u32) as f64).collect();
    let factor = netmf_factor(g.volume(), total_samples, b);
    let runs = table
        .drain_map(|i, j, w| trunc_log_entry(factor, degrees[i as usize], degrees[j as usize], w));
    CsrMatrix::from_sharded_rows(n, n, runs)
}

/// Weighted analogue of [`sharded_to_netmf`] (weighted degrees in the
/// transform, same fused drain).
pub fn weighted_sharded_to_netmf(
    g: &WeightedGraph,
    table: ShardedEdgeTable,
    total_samples: u64,
    b: f64,
) -> CsrMatrix {
    let n = g.num_vertices();
    let degrees: Vec<f64> = (0..n as u32).map(|v| g.weighted_degree(v)).collect();
    let factor = netmf_factor(g.volume(), total_samples, b);
    let runs = table
        .drain_map(|i, j, w| trunc_log_entry(factor, degrees[i as usize], degrees[j as usize], w));
    CsrMatrix::from_sharded_rows(n, n, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::build_sparsifier;
    use crate::downsample::ProbScheme;
    use crate::netmf::sparsifier_to_netmf;
    use crate::weighted::{build_weighted_sparsifier, weighted_sparsifier_to_netmf};
    use lightne_gen::generators::erdos_renyi;

    fn assert_bitwise_equal(a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.nnz(), b.nnz(), "nnz differs");
        for i in 0..a.n_rows() {
            let (ca, va) = a.row(i);
            let (cb, vb) = b.row(i);
            assert_eq!(ca, cb, "row {i} structure differs");
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} value bits differ");
            }
        }
    }

    #[test]
    fn fused_drain_matches_coo_path_bitwise() {
        let g = erdos_renyi(300, 3_000, 77);
        let cfg = SamplerConfig {
            window: 5,
            samples: 200_000,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 99,
        };
        let (coo, s1) = build_sparsifier(&g, &cfg).unwrap();
        let classic = sparsifier_to_netmf(&g, coo, cfg.samples, 1.0);
        for shards in [1usize, 3, 8, 64] {
            let (table, s2) = build_sharded_sparsifier(&g, &cfg, shards).unwrap();
            assert_eq!(s1.trials, s2.trials);
            assert_eq!(s1.kept, s2.kept);
            assert_eq!(s1.distinct_entries, s2.distinct_entries);
            let fused = sharded_to_netmf(&g, table, cfg.samples, 1.0);
            assert_bitwise_equal(&classic, &fused);
        }
    }

    #[test]
    fn weighted_fused_drain_matches_coo_path_bitwise() {
        let gu = erdos_renyi(120, 900, 31);
        let g = WeightedGraph::from_unweighted(&gu);
        let cfg = SamplerConfig {
            window: 4,
            samples: 100_000,
            downsample: true,
            c_factor: None,
            prob: ProbScheme::Degree,
            seed: 12,
        };
        let (coo, _) = build_weighted_sparsifier(&g, &cfg).unwrap();
        let classic = weighted_sparsifier_to_netmf(&g, coo, cfg.samples, 1.0);
        let (table, _) = build_weighted_sharded_sparsifier(&g, &cfg, 5).unwrap();
        let fused = weighted_sharded_to_netmf(&g, table, cfg.samples, 1.0);
        assert_bitwise_equal(&classic, &fused);
    }

    #[test]
    fn sharded_errors_propagate() {
        let g = lightne_graph::GraphBuilder::from_edges(4, &[]);
        let cfg = SamplerConfig { samples: 100, ..Default::default() };
        match build_sharded_sparsifier(&g, &cfg, 4) {
            Err(e) => assert_eq!(e, SamplerError::EmptyGraph),
            Ok(_) => panic!("empty graph must not sample"),
        }
    }

    #[test]
    fn resolve_shards_auto_and_explicit() {
        assert_eq!(resolve_shards(7, 1000), 7);
        let auto = resolve_shards(0, 1 << 20);
        assert!(auto >= 1);
    }
}
