//! Span-exact lexer edge cases: raw identifiers, byte / raw-byte
//! strings, and nested block comments. The parser and the directive
//! scanners both trust the lexer's spans, so each test pins exact
//! `(line, col)` positions, not just token presence — a lexer that
//! drifts a column after one of these constructs silently misattributes
//! every downstream finding on the line.

use xtask::lexer::{lex, TokKind};

#[test]
fn raw_identifier_is_one_token_with_raw_flag() {
    let l = lex("fn r#fn() {}\nlet r#type = 1;");
    let idents: Vec<_> = l
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| (t.text.as_str(), t.raw, t.line, t.col))
        .collect();
    // `r#fn` lexes as ONE Ident with the sigil stripped and raw=true —
    // not as `r`, `#`, `fn` (which would make the parser see a spurious
    // `fn` keyword and invent an item).
    assert_eq!(
        idents,
        [("fn", false, 1, 1), ("fn", true, 1, 4), ("let", false, 2, 1), ("type", true, 2, 5)]
    );
    assert!(!l.tokens.iter().any(|t| t.text == "#"), "no stray `#` from the raw sigil");
}

#[test]
fn raw_identifier_at_end_of_input() {
    let l = lex("r#match");
    assert_eq!(l.tokens.len(), 1);
    assert_eq!((l.tokens[0].text.as_str(), l.tokens[0].raw), ("match", true));
}

#[test]
fn bare_r_is_still_an_identifier() {
    // `r` followed by something that is neither `"` nor `#ident` must
    // stay a plain identifier.
    let l = lex("let r = r + 1;");
    let rs: Vec<_> = l.tokens.iter().filter(|t| t.text == "r").collect();
    assert_eq!(rs.len(), 2);
    assert!(rs.iter().all(|t| t.kind == TokKind::Ident && !t.raw));
}

#[test]
fn raw_string_with_hashes_spans_lines() {
    let src = "let s = r#\"line one\nunwrap() inside\"#;\nlet after = 1;";
    let l = lex(src);
    // The raw string swallows the `unwrap(` text: no unwrap Ident token.
    assert!(!l.tokens.iter().any(|t| t.text == "unwrap"));
    let after = l.tokens.iter().find(|t| t.text == "after").expect("token after raw string");
    assert_eq!((after.line, after.col), (3, 5), "line counting continues through the literal");
}

#[test]
fn byte_and_raw_byte_strings() {
    let l = lex(r#"let a = b"panic!"; let b2 = br"expect"; let c = b'x';"#);
    // Literal *contents* never become Ident tokens.
    assert!(!l.tokens.iter().any(|t| t.text == "panic" || t.text == "expect"));
    // All three bindings survive with correct columns.
    let names: Vec<_> = l
        .tokens
        .iter()
        .filter(|t| matches!(t.text.as_str(), "a" | "b2" | "c"))
        .map(|t| (t.text.as_str(), t.col))
        .collect();
    assert_eq!(names, [("a", 5), ("b2", 24), ("c", 45)]);
}

#[test]
fn nested_block_comments_balance() {
    let src = "/* outer /* inner unwrap() */ still comment */ fn ok() {}";
    let l = lex(src);
    assert!(!l.tokens.iter().any(|t| t.text == "unwrap" || t.text == "inner"));
    let f = l.tokens.iter().find(|t| t.text == "fn").expect("code resumes after comment");
    assert_eq!((f.line, f.col), (1, 48));
    assert_eq!(l.comments.len(), 1, "one comment spanning the whole nested construct");
}

#[test]
fn nested_block_comment_spanning_lines_tracks_end_line() {
    let src = "/* a\n/* b\n*/\nc */ fn f() {}";
    let l = lex(src);
    assert_eq!(l.comments.len(), 1);
    assert_eq!((l.comments[0].line, l.comments[0].end_line), (1, 4));
    let f = l.tokens.iter().find(|t| t.text == "fn").unwrap();
    assert_eq!((f.line, f.col), (4, 6));
}

#[test]
fn block_comment_adjacent_to_string_literal() {
    // A `*/` inside a string is not a comment close; a quote inside a
    // comment is not a string open.
    let l = lex("let s = \"*/ /*\"; /* \" */ let t = 2;");
    assert_eq!(l.comments.len(), 1);
    let t = l.tokens.iter().find(|t| t.text == "t").expect("code after the comment lexes");
    assert_eq!((t.line, t.col), (1, 30));
}

#[test]
fn doc_comment_classification() {
    let l = lex("/// doc\n//! inner doc\n// plain\n/** block doc */\n/*! bang doc */\n/* plain block */\n/**/ fn f() {}");
    let flags: Vec<bool> = l.comments.iter().map(|c| c.is_doc()).collect();
    assert_eq!(flags, [true, true, false, true, true, false, false]);
}
