//! Whole-program analysis integration tests over the on-disk fixture
//! mini-workspace in `tests/fixtures/analyze/` (excluded from the real
//! workspace walk by `config::EXCLUDE`). Each resolution edge case the
//! call graph must handle conservatively — trait-object dispatch,
//! generic bounds, use-rename re-exports — is asserted span-exactly:
//! over-approximation is acceptable, silent under-approximation is not.

use std::fs;
use std::path::Path;

use xtask::analyze::{analyze_files, AnalysisReport, AnalyzeConfig};
use xtask::parser::{parse_file, ParsedFile};

const APP: &str = "crates/app/src/lib.rs";
const DEP: &str = "crates/dep/src/lib.rs";
const DANGER: &str = "crates/danger/src/danger.rs";

fn fixture_files() -> Vec<ParsedFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyze");
    [APP, DEP, DANGER]
        .iter()
        .map(|rel| {
            let src = fs::read_to_string(root.join(rel)).expect("fixture file exists");
            parse_file(rel, &src)
        })
        .collect()
}

fn fixture_config() -> AnalyzeConfig {
    AnalyzeConfig {
        entry_points: ["entry_trait", "entry_generic", "entry_reexport", "entry_unsafe_chain"]
            .iter()
            .map(|n| (APP.to_string(), n.to_string()))
            .collect(),
        unsafe_modules: vec![DANGER.to_string()],
        design_doc: Some("The sole unsafe module is crates/danger/src/danger.rs.".to_string()),
    }
}

fn report() -> AnalysisReport {
    analyze_files(&fixture_files(), &fixture_config())
}

#[test]
fn trait_object_call_reaches_impl_taint() {
    // entry_trait -> <dyn Stage>::run -> Impl1::run -> helper, where the
    // HashMap lives. Dropping trait edges would lose this finding.
    let r = report();
    let hash = r
        .taint
        .iter()
        .find(|t| t.kind == "hash_order")
        .expect("HashMap behind a trait call is found");
    assert_eq!(hash.file, DEP);
    assert_eq!((hash.line, hash.col), (14, 33), "span-exact: the HashMap token");
    assert_eq!(hash.func, "helper");
    assert!(
        hash.chain.contains(&"Impl1::run".to_string()),
        "chain passes through the trait impl: {:?}",
        hash.chain
    );
}

#[test]
fn use_rename_reexport_resolves() {
    // entry_reexport calls `clock_read()`, a use-rename of
    // `lightne_dep::noisy_time`. The alias table must map it back.
    let r = report();
    let t = r
        .taint
        .iter()
        .find(|t| t.kind == "instant_now")
        .expect("Instant::now behind a use-rename is found");
    assert_eq!(t.file, DEP);
    assert_eq!((t.line, t.col), (25, 13), "span-exact: the Instant token");
    assert_eq!(t.func, "noisy_time");
}

#[test]
fn nondeterminism_off_the_entry_surface_is_not_a_finding() {
    // `not_an_entry` reads SystemTime but is not an entry point and is
    // called by nobody — it must NOT appear.
    let r = report();
    assert!(
        !r.taint.iter().any(|t| t.kind == "system_time_now"),
        "unreachable source reported: {:?}",
        r.taint
    );
}

#[test]
fn panic_sites_split_by_justification() {
    let r = report();
    let in_helper: Vec<_> = r.panic.iter().filter(|p| p.func == "helper").collect();
    assert_eq!(in_helper.len(), 2, "{:?}", in_helper);
    // Line 18 carries the xtask:panic-ok one line above; line 20 does not.
    let justified = in_helper.iter().find(|p| p.line == 18).expect("justified site");
    assert!(justified.justified);
    let bare = in_helper.iter().find(|p| p.line == 21).expect("unjustified site");
    assert!(!bare.justified);
    assert_eq!(bare.kind, "unwrap");
}

#[test]
fn unsafe_reach_lists_public_chain_only() {
    let r = report();
    assert_eq!(r.unsafe_reach.len(), 1);
    let apis = &r.unsafe_reach[0].public_apis;
    assert!(
        apis.iter().any(|a| a.ends_with("::entry_unsafe_chain")),
        "public caller chain into the unsafe module: {apis:?}"
    );
    assert!(
        apis.iter().any(|a| a.ends_with("::poke")),
        "the module's own public surface is included: {apis:?}"
    );
    assert!(
        !apis.iter().any(|a| a.contains("entry_trait")),
        "entries that never reach the module are excluded: {apis:?}"
    );
}

#[test]
fn inventory_cross_check_passes_and_fails() {
    let r = report();
    assert!(r.inventory.checked);
    assert!(r.inventory.ok(), "{:?}", r.inventory);

    // A DESIGN doc that omits the module fails the inventory.
    let mut cfg = fixture_config();
    cfg.design_doc = Some("No unsafe modules documented here.".to_string());
    let r2 = analyze_files(&fixture_files(), &cfg);
    assert_eq!(r2.inventory.missing_in_design, [DANGER.to_string()]);
    assert!(!r2.ok());
}

#[test]
fn missing_entry_point_gates() {
    let mut cfg = fixture_config();
    cfg.entry_points.push((APP.to_string(), "renamed_away".to_string()));
    let r = analyze_files(&fixture_files(), &cfg);
    assert_eq!(r.missing_entries.len(), 1);
    assert!(r.missing_entries[0].contains("renamed_away"));
    assert!(!r.ok(), "a dangling entry must fail the gate, not shrink the surface");
}

#[test]
fn json_schema_matches_golden_file() {
    // The ratchet script greps the flat counts block by key; the golden
    // file pins the entire serialized form so any schema drift —
    // renamed key, reordered field, changed nesting — fails here first.
    let got = report().to_json();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyze_golden.json");
    let want = fs::read_to_string(&golden_path).expect("golden file committed");
    assert_eq!(got, want, "JSON schema drifted from tests/fixtures/analyze_golden.json");
}

#[test]
fn counts_block_is_flat_one_key_per_line() {
    // The bash ratchet helper (`field()`) greps `"key": value` lines; a
    // nested or multi-key-per-line counts block would silently break it.
    let json = report().to_json();
    let counts = json
        .split("\"counts\": {")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
        .expect("counts block present");
    for key in [
        "functions",
        "edges",
        "entry_points",
        "taint_unjustified",
        "taint_justified",
        "panic_unjustified",
        "panic_justified",
        "slice_index",
        "int_div",
        "assert_sites",
        "panic_vendor_exempt",
        "unsafe_reach_apis",
        "directive_errors",
    ] {
        let hits: Vec<_> = counts.lines().filter(|l| l.contains(&format!("\"{key}\""))).collect();
        assert_eq!(hits.len(), 1, "key {key} appears exactly once");
        assert!(
            hits[0].trim_start().starts_with(&format!("\"{key}\": ")),
            "flat `\"{key}\": <n>` line, got {:?}",
            hits[0]
        );
    }
}
