//! Fixture tests for the six workspace lints: each fixture violates
//! exactly one lint at a known span, the clean fixture produces zero
//! false positives, and the live workspace itself must lint clean — the
//! same gate CI enforces with `cargo xtask check`.

use std::path::Path;

use xtask::{check_source, Diagnostic};

fn lints_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.lint).collect()
}

#[test]
fn l1_fires_on_undocumented_unsafe() {
    let diags = check_source("crates/eval/src/fixture_l1.rs", include_str!("fixtures/l1.rs"));
    assert_eq!(lints_of(&diags), ["L1"], "{diags:?}");
    assert_eq!(diags[0].line, 10, "span must point at the `unsafe` token");
}

#[test]
fn l1_isolation_fires_outside_the_designated_module() {
    // The graph crate confines `unsafe` to mmap.rs: a SAFETY-commented
    // unsafe block anywhere else in the crate is still a violation.
    let src = include_str!("fixtures/l1_isolation.rs");
    let diags = check_source("crates/graph/src/v2.rs", src);
    assert_eq!(lints_of(&diags), ["L1"], "{diags:?}");
    assert_eq!(diags[0].line, 9, "span must point at the `unsafe` token");
    assert!(diags[0].message.contains("mmap.rs"), "{diags:?}");
}

#[test]
fn l1_isolation_allows_the_designated_module_and_other_crates() {
    let src = include_str!("fixtures/l1_isolation.rs");
    assert!(check_source("crates/graph/src/mmap.rs", src).is_empty());
    assert!(check_source("crates/eval/src/ptr.rs", src).is_empty());
}

#[test]
fn l2_fires_on_hashmap_in_deterministic_path() {
    let diags = check_source("crates/core/src/fixture_l2.rs", include_str!("fixtures/l2.rs"));
    assert_eq!(lints_of(&diags), ["L2"], "{diags:?}");
    assert_eq!(diags[0].line, 5, "span must point at the HashMap import");
    assert!(diags[0].message.contains("BTreeMap"));
}

#[test]
fn l2_does_not_apply_off_the_deterministic_path() {
    let diags = check_source("crates/graph/src/fixture_l2.rs", include_str!("fixtures/l2.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l3_fires_on_parallel_float_sum() {
    let diags = check_source("crates/linalg/src/fixture_l3.rs", include_str!("fixtures/l3.rs"));
    assert_eq!(lints_of(&diags), ["L3"], "{diags:?}");
    assert_eq!(diags[0].line, 9, "span must point at the `sum` terminal");
    assert!(diags[0].message.contains("parallel_reduce_sum"));
}

#[test]
fn l3_whitelists_the_reduction_helpers() {
    let diags = check_source("crates/utils/src/parallel.rs", include_str!("fixtures/l3.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l4_fires_on_unjustified_relaxed() {
    let diags = check_source("crates/hashtable/src/fixture_l4.rs", include_str!("fixtures/l4.rs"));
    assert_eq!(lints_of(&diags), ["L4"], "{diags:?}");
    assert_eq!(diags[0].line, 8, "span must point at the unjustified Relaxed");
}

#[test]
fn l5_fires_on_system_time() {
    let diags = check_source("crates/graph/src/fixture_l5.rs", include_str!("fixtures/l5.rs"));
    assert_eq!(lints_of(&diags), ["L5"], "{diags:?}");
    assert_eq!(diags[0].line, 9, "span must point at SystemTime::now");
}

#[test]
fn l6_fires_on_intrinsic_outside_target_feature_fn() {
    // Linted as the designated module, so the one violation is the
    // missing `#[target_feature]` gate.
    let diags = check_source("crates/linalg/src/simd.rs", include_str!("fixtures/l6.rs"));
    assert_eq!(lints_of(&diags), ["L6"], "{diags:?}");
    assert_eq!(diags[0].line, 9, "span must point at the intrinsic call");
    assert!(diags[0].message.contains("target_feature"), "{diags:?}");
}

#[test]
fn l6_fires_on_intrinsic_outside_designated_module() {
    // A fully gated, SAFETY-commented call is still confined: under any
    // path that is not a designated unsafe module it violates L6.
    let src = include_str!("fixtures/l6_confinement.rs");
    let diags = check_source("crates/linalg/src/kernels.rs", src);
    assert_eq!(lints_of(&diags), ["L6"], "{diags:?}");
    assert_eq!(diags[0].line, 9, "span must point at the intrinsic call");
    assert!(diags[0].message.contains("designated"), "{diags:?}");
}

#[test]
fn l6_allows_gated_intrinsics_in_designated_modules() {
    let src = include_str!("fixtures/l6_confinement.rs");
    assert!(check_source("crates/linalg/src/simd.rs", src).is_empty());
    assert!(check_source("crates/hashtable/src/prefetch.rs", src).is_empty());
}

#[test]
fn l6_requires_a_safety_feature_guard_comment() {
    // Strip the SAFETY line from the clean fixture: the gated call now
    // lacks its feature-guard justification.
    let src = include_str!("fixtures/l6_confinement.rs").replace("SAFETY:", "safety —");
    let diags = check_source("crates/linalg/src/simd.rs", &src);
    assert_eq!(lints_of(&diags), ["L6"], "{diags:?}");
    assert!(diags[0].message.contains("SAFETY"), "{diags:?}");
}

#[test]
fn clean_fixture_has_zero_false_positives() {
    let diags = check_source("crates/core/src/fixture_clean.rs", include_str!("fixtures/clean.rs"));
    assert!(diags.is_empty(), "false positives: {diags:?}");
}

#[test]
fn json_report_shape() {
    let diags = check_source("crates/core/src/fixture_l2.rs", include_str!("fixtures/l2.rs"));
    let json = xtask::diagnostics::to_json(&diags);
    assert!(json.contains("\"lint\": \"L2\""));
    assert!(json.contains("\"ok\": false"));
    assert!(xtask::diagnostics::to_json(&[]).contains("\"ok\": true"));
}

/// The live workspace must pass its own gate: `cargo xtask check` with
/// zero violations and zero undocumented suppressions. This makes the
/// invariants tier-1-enforced even without the CI job.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let diags = xtask::check_workspace(root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace lint violations:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn stale_allow_with_no_diagnostic_is_flagged() {
    // A reasoned L5 allow over code that no longer reads the clock.
    let src = "pub fn f() {\n    // xtask:allow(L5): used to time this block.\n    let x = 1;\n    let _ = x;\n}\n";
    let diags = xtask::stale_suppressions("crates/core/src/x.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("stale `xtask:allow"), "{}", diags[0].message);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn live_allow_is_not_flagged_as_stale() {
    let src = "pub fn f() {\n    // xtask:allow(L5): measured for the stats block below.\n    let _t = Instant::now();\n}\n";
    let diags = xtask::stale_suppressions("crates/core/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn stale_panic_ok_is_flagged() {
    let src = "pub fn f() -> u32 {\n    // xtask:panic-ok(the unwrap this excused was removed)\n    41 + 1\n}\n";
    let diags = xtask::stale_suppressions("crates/core/src/x.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("stale `xtask:panic-ok"), "{}", diags[0].message);
}

#[test]
fn live_panic_ok_is_not_flagged() {
    let src = "pub fn f() -> u32 {\n    // xtask:panic-ok(Some(1) is trivially unwrappable)\n    Some(1).unwrap()\n}\n";
    let diags = xtask::stale_suppressions("crates/core/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn doc_comment_mentions_are_not_directives() {
    // Prose about the directive syntax in rustdoc must neither act as a
    // waiver nor be audited as a stale one.
    let src =
        "/// Suppress with `xtask:allow(L5): reason` or `xtask:panic-ok(reason)`.\npub fn f() {}\n";
    assert!(xtask::stale_suppressions("crates/core/src/x.rs", src).is_empty());
    let live =
        "/// `xtask:allow(L5): reason` syntax docs.\npub fn f() { let _ = Instant::now(); }\n";
    let diags = check_source("crates/core/src/x.rs", live);
    assert_eq!(diags.len(), 1, "doc mention must not suppress the L5 diagnostic: {diags:?}");
}

/// The live workspace must also pass the stale-suppression audit: every
/// committed waiver still covers a real site.
#[test]
fn workspace_has_no_stale_suppressions() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let diags = xtask::stale_workspace_suppressions(root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "stale suppressions:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
