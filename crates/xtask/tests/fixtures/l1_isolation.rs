// L1 isolation fixture: a fully SAFETY-commented `unsafe` block that is
// still a violation when linted under a path inside an unsafe-isolated
// crate (crates/graph/src/...) other than the designated module, and
// clean when linted as the designated module itself. The violation is
// the `unsafe` on line 9.

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is non-null and valid for one byte.
    unsafe { *p }
}
