// L6 confinement fixture: a correctly `#[target_feature]`-gated,
// SAFETY-commented intrinsic call that is clean when linted as a
// designated unsafe module and a violation anywhere else. The violation
// is the `_mm_prefetch` on line 9.

// SAFETY: prefetch hints never fault and never dereference `ptr`.
#[target_feature(enable = "sse")]
fn warm(ptr: *const u8) {
    _mm_prefetch::<_MM_HINT_T0>(ptr.cast());
}
