// Clean fixture: every near-miss of L1–L5 in one file, linted under the
// strictest virtual path (crates/core/src/fixture_clean.rs, which is on
// the deterministic path). The engine must report ZERO violations here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lightne_utils::parallel::parallel_reduce_sum;

// L1 near-miss: documented unsafe.
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` points to at least one initialized
    // byte; checked by the debug assertion above every call site.
    unsafe { *p }
}

// L2 near-miss: ordered map on the deterministic path is fine.
pub fn histogram(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

// L3 near-miss: the deterministic fixed-block reduction helper.
pub fn total_weight(w: &[f32]) -> f64 {
    parallel_reduce_sum(w.len(), |i| w[i] as f64)
}

// L4 near-miss: justified Relaxed.
pub fn observed_len(len: &AtomicU64) -> u64 {
    // ordering: Relaxed — statistics counter read outside the insertion
    // critical path; no other memory is published through it.
    len.load(Ordering::Relaxed)
}

// L5 near-miss: justified wall-clock read via inline allow.
pub fn stage_seconds(f: impl FnOnce()) -> f64 {
    // xtask:allow(L5): wall-clock stage timing for progress reporting
    // only; the duration never feeds numeric output.
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

// Lexer fidelity: every banned name as string data must stay inert.
pub fn banned_words() -> &'static str {
    "HashMap HashSet SystemTime::now thread_rng Ordering::Relaxed unsafe"
}

#[cfg(test)]
mod tests {
    // cfg(test) scaffolding may use hash containers and wall clocks.
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn scaffolding() {
        let _m: HashMap<u32, u32> = HashMap::new();
        let _t = Instant::now();
    }
}
