// L1 fixture: an `unsafe` block with no SAFETY comment anywhere near it.
// Linted under the virtual path crates/eval/src/fixture_l1.rs (L1 is
// workspace-wide, so the path only needs to avoid the other lints'
// scopes). The violation is the `unsafe` on line 10.

pub fn read_first(p: *const u8) -> u8 {
    // A plain comment that is not a safety argument; the lint must not
    // accept it as one.
    debug_assert!(!p.is_null());
    unsafe { *p }
}
