// L4 fixture: an unjustified Ordering::Relaxed in the (virtual)
// lock-free table path crates/hashtable/src/fixture_l4.rs. The violation
// is on line 8; the justified load in `stat` must NOT fire.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn stat(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed — advisory statistics counter; the value is never
    // used to publish or observe other memory.
    counter.load(Ordering::Relaxed)
}
