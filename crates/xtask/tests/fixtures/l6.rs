// L6 fixture: a `_mm…` intrinsic call from a plain function with no
// `#[target_feature]` attribute. Linted as a designated unsafe module
// (crates/linalg/src/simd.rs) the placement is allowed and the SAFETY
// comment is present, so the only violation is the missing
// `#[target_feature]` gate — the `_mm_prefetch` on line 9.

// SAFETY: prefetch hints never fault and never dereference `ptr`.
pub fn warm(ptr: *const u8) {
    _mm_prefetch::<_MM_HINT_T0>(ptr.cast());
}
