// L3 fixture: an order-sensitive float reduction inside a rayon parallel
// chain, linted under the virtual path crates/linalg/src/fixture_l3.rs.
// The violation is the `sum` terminal on line 9. The per-item local
// accumulator in `row_norms` must NOT fire.

use rayon::prelude::*;

pub fn energy(values: &[f32]) -> f64 {
    values.par_iter().map(|&x| (x as f64) * (x as f64)).sum()
}

pub fn row_norms(rows: &[Vec<f32>]) -> Vec<f64> {
    rows.par_iter()
        .map(|r| {
            let mut acc = 0.0f64;
            for &x in r {
                acc += (x as f64) * (x as f64);
            }
            acc.sqrt()
        })
        .collect()
}
