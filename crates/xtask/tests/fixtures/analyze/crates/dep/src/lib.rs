// Fixture: implementing crate. `Impl1::run` is only reachable through
// the `Stage` trait in the app crate — a resolver that drops trait
// edges under-approximates and misses every site below.

pub struct Impl1;

impl Stage for Impl1 {
    fn run(&self) -> u32 {
        helper()
    }
}

fn helper() -> u32 {
    let map = std::collections::HashMap::new();
    let _ = map.len();
    let a: Option<u32> = Some(2);
    // xtask:panic-ok(fixture: justified site)
    let x = a.unwrap();
    let b: Option<u32> = Some(1);
    let y = x + 1;
    y + b.unwrap()
}

pub fn noisy_time() -> u64 {
    let _ = Instant::now();
    7
}
