// Fixture: entry-point crate exercising the resolution edge cases the
// call graph must over-approximate — trait-object dispatch, generic
// bounds, and a use-rename re-export. NOT compiled; parsed by tests.

use lightne_dep::noisy_time as clock_read;

pub trait Stage {
    fn run(&self) -> u32;
}

pub fn entry_trait(s: &dyn Stage) -> u32 {
    s.run()
}

pub fn entry_generic<S: Stage>(s: S) -> u32 {
    s.run()
}

pub fn entry_reexport() {
    clock_read();
}

pub fn entry_unsafe_chain() -> u32 {
    lightne_danger::poke()
}

pub fn not_an_entry() {
    let _ = std::time::SystemTime::now();
}
