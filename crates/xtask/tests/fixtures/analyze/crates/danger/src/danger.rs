// Fixture: the designated unsafe module for the unsafe-reach analysis.

/// Reads the first element without a bounds check.
pub fn poke() -> u32 {
    let v = [1u32, 2, 3];
    // SAFETY: index 0 of a non-empty array.
    unsafe { *v.as_ptr() }
}
