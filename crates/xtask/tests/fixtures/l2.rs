// L2 fixture: HashMap used in (virtual) deterministic-path module
// crates/core/src/fixture_l2.rs. The violation is the `HashMap` import
// on line 5; the cfg(test) module at the bottom must NOT fire.

use std::collections::HashMap;

pub fn degree_histogram(degrees: &[u32]) -> Vec<(u32, usize)> {
    let mut h: std::collections::BTreeMap<u32, usize> = Default::default();
    for &d in degrees {
        *h.entry(d).or_insert(0) += 1;
    }
    h.into_iter().collect()
}

#[cfg(test)]
mod tests {
    // Inside cfg(test) a HashMap is fine: test-only scaffolding never
    // feeds deterministic output.
    use std::collections::HashMap;

    #[test]
    fn hist() {
        let _scratch: HashMap<u32, usize> = HashMap::new();
    }
}
