// L5 fixture: ambient nondeterminism, linted under the virtual path
// crates/graph/src/fixture_l5.rs (off the deterministic path, so only
// the workspace-wide half of L5 applies). The violation is the
// SystemTime::now call on line 9. The seeded RNG use must NOT fire.

use std::time::SystemTime;

pub fn stamp() -> u64 {
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

pub fn draw(rng: &mut lightne_utils::rng::XorShiftStream) -> u64 {
    rng.next_u64()
}
