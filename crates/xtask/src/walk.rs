//! Workspace file discovery for `cargo xtask check` / `analyze`.
//!
//! Walks the scan roots in [`crate::config::SCAN_ROOTS`], collecting
//! `.rs` files and skipping the exclusion list (build output and the
//! lint-violation fixtures, which are test *inputs*). The walk is
//! hardened against the ways a source tree lies to a scanner:
//!
//! * **symlinks are never followed** — a link pointing outside the
//!   workspace (or back into it, forming a cycle) must not add files or
//!   loop the walk; `symlink_metadata` is checked before recursing;
//! * **any directory named `target` is skipped at entry** — nested cargo
//!   build dirs (e.g. a fixture crate built in place) would otherwise be
//!   scanned before the path-fragment exclusion filters their files out;
//! * **ordering is deterministic across platforms** — entries are sorted
//!   by the workspace-relative `/`-separated path as raw bytes, so
//!   diagnostics and analysis reports come out byte-identical regardless
//!   of the host's directory-entry order or path-separator conventions.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config;

/// Collects all lintable `.rs` files under `root`, workspace-relative.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scan in config::SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            visit(root, &dir, &mut out)?;
        }
    }
    // Byte-wise sort of the relative `/`-path, not PathBuf order: the
    // component-aware PathBuf comparison differs across platforms.
    out.sort_by(|a, b| a.to_string_lossy().as_bytes().cmp(b.to_string_lossy().as_bytes()));
    out.dedup();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let rel = rel_str(root, &path);
        if config::EXCLUDE.iter().any(|x| rel.starts_with(x) || rel.contains(&format!("/{x}"))) {
            continue;
        }
        // Never follow symlinks: a link can escape the workspace or
        // form a cycle. `symlink_metadata` stats the link itself.
        let meta = fs::symlink_metadata(&path)?;
        if meta.file_type().is_symlink() {
            continue;
        }
        if meta.is_dir() {
            // Skip nested cargo build dirs at entry instead of filtering
            // their (many) files one by one.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            visit(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(PathBuf::from(rel));
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
pub fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excludes_fixture_dir() {
        // The repo root is two levels above this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let files = workspace_files(root).unwrap();
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| !f.to_string_lossy().contains("tests/fixtures")));
        assert!(files.iter().any(|f| f.to_string_lossy() == "crates/xtask/src/walk.rs"));
    }

    /// Builds a throwaway fixture tree:
    ///
    /// ```text
    /// <tmp>/crates/a/src/lib.rs
    /// <tmp>/crates/a/target/debug/build.rs   (nested target dir)
    /// <tmp>/crates/b/src/zz.rs
    /// <tmp>/crates/b/src/aa.rs
    /// <tmp>/crates/link -> ../outside        (dir symlink)
    /// <tmp>/crates/b/src/ln.rs -> lib.rs     (file symlink)
    /// <tmp>/outside/evil.rs
    /// ```
    fn build_tree() -> PathBuf {
        let root = std::env::temp_dir().join(format!("xtask-walk-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for d in ["crates/a/src", "crates/a/target/debug", "crates/b/src", "outside"] {
            fs::create_dir_all(root.join(d)).unwrap();
        }
        fs::write(root.join("crates/a/src/lib.rs"), "pub fn a() {}\n").unwrap();
        fs::write(root.join("crates/a/target/debug/build.rs"), "fn main() {}\n").unwrap();
        fs::write(root.join("crates/b/src/zz.rs"), "pub fn z() {}\n").unwrap();
        fs::write(root.join("crates/b/src/aa.rs"), "pub fn a() {}\n").unwrap();
        fs::write(root.join("outside/evil.rs"), "fn evil() {}\n").unwrap();
        #[cfg(unix)]
        {
            std::os::unix::fs::symlink(root.join("outside"), root.join("crates/link")).unwrap();
            std::os::unix::fs::symlink(
                root.join("crates/a/src/lib.rs"),
                root.join("crates/b/src/ln.rs"),
            )
            .unwrap();
        }
        root
    }

    #[test]
    fn skips_symlinks_and_nested_target_and_sorts() {
        let root = build_tree();
        let files: Vec<String> = workspace_files(&root)
            .unwrap()
            .iter()
            .map(|p| p.to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            files,
            ["crates/a/src/lib.rs", "crates/b/src/aa.rs", "crates/b/src/zz.rs"],
            "deterministic byte order; no symlinked or target/ files"
        );
        fs::remove_dir_all(&root).unwrap();
    }
}
