//! Workspace file discovery for `cargo xtask check`.
//!
//! Walks the scan roots in [`crate::config::SCAN_ROOTS`], collecting
//! `.rs` files and skipping the exclusion list (build output and the
//! lint-violation fixtures, which are test *inputs*). Paths are returned
//! workspace-relative with `/` separators and sorted, so diagnostics come
//! out in a stable order on every platform.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config;

/// Collects all lintable `.rs` files under `root`, workspace-relative.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scan in config::SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            visit(root, &dir, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let rel = rel_str(root, &path);
        if config::EXCLUDE.iter().any(|x| rel.starts_with(x) || rel.contains(&format!("/{x}"))) {
            continue;
        }
        if path.is_dir() {
            visit(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(PathBuf::from(rel));
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
pub fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excludes_fixture_dir() {
        // The repo root is two levels above this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let files = workspace_files(root).unwrap();
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| !f.to_string_lossy().contains("tests/fixtures")));
        assert!(files.iter().any(|f| f.to_string_lossy() == "crates/xtask/src/walk.rs"));
    }
}
