//! A small Rust lexer producing a token stream with source positions.
//!
//! The lint passes need token-level precision — matching on identifiers
//! and punctuation while *never* matching inside string literals or
//! comments (the engine's own source contains every forbidden pattern as
//! string data). A full `syn` AST is unavailable offline and unnecessary:
//! every lint in the catalog is decidable from the token stream plus
//! brace matching, which this lexer provides. It handles line and
//! (nested) block comments, raw/byte/c strings, char-vs-lifetime
//! disambiguation, numeric literals with suffixes, and raw identifiers.
//! It is deliberately forgiving: unknown bytes become one-character
//! punctuation tokens rather than errors, so a future syntax extension
//! degrades to weaker linting instead of a crash.

/// Kinds of tokens the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#raw` identifiers, without the
    /// `r#` prefix).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, `<`, …). Multi-char
    /// operators appear as consecutive single-character tokens.
    Punct,
    /// Integer literal.
    Int,
    /// Floating-point literal (`1.0`, `1e-3`, `2f64`, …).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
    /// Whether this is a raw identifier (`r#fn`): the `text` is the bare
    /// name without the `r#` sigil, but the token must *not* be treated
    /// as a keyword by item-level parsing.
    pub raw: bool,
}

/// One comment with its position. Doc comments are included.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (differs for block
    /// comments spanning lines).
    pub end_line: u32,
}

impl Comment {
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`). Doc
    /// comments are rendered documentation: a directive mentioned in one
    /// (`xtask:allow`, `xtask:panic-ok`, `ordering:`) is prose *about*
    /// the directive, never a live waiver, so every directive scanner
    /// skips them.
    pub fn is_doc(&self) -> bool {
        let t = self.text.as_bytes();
        matches!(t.get(..3), Some(b"///" | b"//!" | b"/**" | b"/*!"))
            // `/**/` is an empty plain block comment, not a doc comment.
            && self.text != "/**/"
    }
}

/// Token stream plus comments for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn slice(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();

    while let Some(b) = c.peek() {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment { text: c.slice(start), line, end_line: c.line });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment { text: c.slice(start), line, end_line: c.line });
            }
            b'"' => {
                lex_string(&mut c);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: c.slice(start),
                    line,
                    col,
                    raw: false,
                });
            }
            b'r' | b'b' | b'c' if starts_prefixed_literal(&c) => {
                let kind = lex_prefixed_literal(&mut c);
                out.tokens.push(Token { kind, text: c.slice(start), line, col, raw: false });
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                out.tokens.push(Token { kind, text: c.slice(start), line, col, raw: false });
            }
            b'r' if c.peek_at(1) == Some(b'#') && c.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#name`: the name is lexed without the
                // sigil so lint pattern matching sees the bare text, but
                // the `raw` flag keeps it from being parsed as a keyword.
                c.bump();
                c.bump();
                let name_start = c.pos;
                while c.peek().is_some_and(is_ident_cont) {
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: c.slice(name_start),
                    line,
                    col,
                    raw: true,
                });
            }
            _ if is_ident_start(b) => {
                while c.peek().is_some_and(is_ident_cont) {
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: c.slice(start),
                    line,
                    col,
                    raw: false,
                });
            }
            _ if b.is_ascii_digit() => {
                let kind = lex_number(&mut c);
                out.tokens.push(Token { kind, text: c.slice(start), line, col, raw: false });
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.slice(start),
                    line,
                    col,
                    raw: false,
                });
            }
        }
    }
    out
}

/// Whether the cursor sits on `r"`, `r#`, `b"`, `b'`, `br`, `c"`, `cr` —
/// i.e. a prefixed literal rather than an identifier starting with that
/// letter.
fn starts_prefixed_literal(c: &Cursor) -> bool {
    // xtask:panic-ok(callers only invoke this mid-input, peek is Some)
    let b0 = c.peek().unwrap();
    match (b0, c.peek_at(1)) {
        (b'r' | b'c', Some(b'"')) | (b'b', Some(b'"' | b'\'')) => true,
        (b'r', Some(b'#')) => {
            // `r#"` raw string vs `r#ident` raw identifier.
            c.peek_at(2) == Some(b'"')
        }
        (b'b' | b'c', Some(b'r')) => matches!(c.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

/// Lexes a literal with an `r`/`b`/`c` prefix; cursor is on the prefix.
fn lex_prefixed_literal(c: &mut Cursor) -> TokKind {
    // Consume prefix letters.
    while matches!(c.peek(), Some(b'r' | b'b' | b'c')) {
        if c.peek() == Some(b'b') && c.peek_at(1) == Some(b'\'') {
            c.bump();
            return lex_quote(c);
        }
        c.bump();
        if c.src[c.pos - 1] == b'r' {
            break;
        }
    }
    // Raw form: hashes then quote.
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek() == Some(b'"') {
        c.bump();
        if hashes == 0 {
            // r"..." — no escapes, ends at the first quote.
            while let Some(b) = c.bump() {
                if b == b'"' {
                    break;
                }
            }
        } else {
            let closer: Vec<u8> =
                std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
            'outer: while c.peek().is_some() {
                if c.src[c.pos..].starts_with(&closer) {
                    for _ in 0..closer.len() {
                        c.bump();
                    }
                    break 'outer;
                }
                c.bump();
            }
        }
    } else {
        // Plain b"..." (quote not yet consumed by prefix loop).
        lex_string(c);
    }
    TokKind::Str
}

/// Lexes a `"…"` string with escapes; cursor is on the opening quote.
fn lex_string(c: &mut Cursor) {
    c.bump();
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Lexes from a `'`: either a char literal or a lifetime/label.
fn lex_quote(c: &mut Cursor) -> TokKind {
    c.bump(); // the quote
    match c.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            c.bump();
            c.bump();
            while let Some(b) = c.peek() {
                c.bump();
                if b == b'\'' {
                    break;
                }
            }
            TokKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // `'a` lifetime or `'x'` char: scan the ident, then check for
            // a closing quote.
            while c.peek().is_some_and(is_ident_cont) {
                c.bump();
            }
            if c.peek() == Some(b'\'') {
                c.bump();
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or '0'.
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            TokKind::Char
        }
        None => TokKind::Lifetime,
    }
}

/// Lexes a numeric literal; cursor is on the first digit.
fn lex_number(c: &mut Cursor) -> TokKind {
    let mut float = false;
    // Radix prefixes.
    if c.peek() == Some(b'0') && matches!(c.peek_at(1), Some(b'x' | b'o' | b'b')) {
        c.bump();
        c.bump();
        while c.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            c.bump();
        }
        return TokKind::Int;
    }
    while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // Fractional part — but `1..n` is int + range and `1.method()` is a
    // field/method access on an int.
    if c.peek() == Some(b'.') && c.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        c.bump();
        while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    }
    // Exponent.
    if matches!(c.peek(), Some(b'e' | b'E')) {
        let off = if matches!(c.peek_at(1), Some(b'+' | b'-')) { 2 } else { 1 };
        if c.peek_at(off).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            for _ in 0..=off {
                c.bump();
            }
            while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
    }
    // Type suffix (`1f64`, `3usize`). A float suffix forces Float.
    if c.peek().is_some_and(is_ident_start) {
        let start = c.pos;
        while c.peek().is_some_and(is_ident_cont) {
            c.bump();
        }
        let suffix = &c.src[start..c.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = a.b();");
        assert_eq!(ks[0], (TokKind::Ident, "let".into()));
        assert_eq!(ks[3], (TokKind::Ident, "a".into()));
        assert_eq!(ks[4], (TokKind::Punct, ".".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "Ordering::Relaxed unsafe HashMap";"#);
        assert!(l.tokens.iter().all(|t| t.text != "Relaxed" && t.text != "unsafe"));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex(r##"let a = r#"x " y"#; let r#fn = 1;"##);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(l.tokens.iter().any(|t| t.text == "fn" && t.kind == TokKind::Ident));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("// one\nlet x = 1; /* two\nlines */ let y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        assert!(l.tokens.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers() {
        let ks = kinds("0 1_000 0xff 1.5 1e-3 2f64 3usize 0..n t.0");
        let floats: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokKind::Float).map(|(_, s)| s.clone()).collect();
        assert_eq!(floats, ["1.5", "1e-3", "2f64"]);
        // `0..n` lexes as int, dot, dot, ident.
        assert!(ks.iter().any(|(k, s)| *k == TokKind::Int && s == "0"));
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }
}
