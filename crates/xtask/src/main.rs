//! `cargo xtask` — workspace task driver.
//!
//! Currently one subcommand:
//!
//! ```text
//! cargo xtask check [--json] [--root <path>]
//! ```
//!
//! Runs the six workspace lints (see DESIGN.md, "Static analysis &
//! concurrency verification") over every source file and exits non-zero
//! if any violation is found. `--json` emits a machine-readable report
//! for CI; `--root` overrides workspace-root auto-detection.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::diagnostics;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("unknown subcommand `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match xtask::check_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", diagnostics::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("xtask check: ok ({} violations)", diags.len());
        } else {
            eprintln!("xtask check: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const USAGE: &str = "usage: cargo xtask check [--json] [--root <path>]";

/// Walks up from the current directory to the first directory containing
/// both a `Cargo.toml` and a `crates/` directory (the workspace root).
fn find_workspace_root() -> std::io::Result<PathBuf> {
    let mut dir = std::env::current_dir()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no ancestor directory contains Cargo.toml and crates/",
            ));
        }
    }
}
