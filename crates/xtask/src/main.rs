//! `cargo xtask` — workspace task driver.
//!
//! ```text
//! cargo xtask check [--json] [--stale-allows] [--root <path>]
//! cargo xtask analyze [--json] [--root <path>]
//! ```
//!
//! `check` runs the six per-file workspace lints (L1–L6); with
//! `--stale-allows` it additionally audits for suppression comments that
//! no longer cover a real diagnostic. `analyze` runs the whole-program
//! reachability analyses (determinism taint, panic surface, unsafe
//! reach) over the workspace call graph. Both exit non-zero on any
//! violation; `--json` emits machine-readable reports for CI and the
//! ratchet script (`scripts/check_analysis_ratchet.sh`); `--root`
//! overrides workspace-root auto-detection. See DESIGN.md, "Static
//! analysis & concurrency verification" and "Whole-program analysis".

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::diagnostics;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "check" && cmd != "analyze" {
        eprintln!("unknown subcommand `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut json = false;
    let mut stale_allows = false;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--stale-allows" if cmd == "check" => stale_allows = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` for `{cmd}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };
    if cmd == "analyze" {
        return run_analyze(&root, json);
    }
    run_check(&root, json, stale_allows)
}

fn run_check(root: &std::path::Path, json: bool, stale_allows: bool) -> ExitCode {
    let mut diags = match xtask::check_workspace(root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if stale_allows {
        match xtask::stale_workspace_suppressions(root) {
            Ok(stale) => diags.extend(stale),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if json {
        print!("{}", diagnostics::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("xtask check: ok ({} violations)", diags.len());
        } else {
            eprintln!("xtask check: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_analyze(root: &std::path::Path, json: bool) -> ExitCode {
    let report = match xtask::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const USAGE: &str = "usage: cargo xtask check [--json] [--stale-allows] [--root <path>]\n\
                     \u{20}      cargo xtask analyze [--json] [--root <path>]";

/// Walks up from the current directory to the first directory containing
/// both a `Cargo.toml` and a `crates/` directory (the workspace root).
fn find_workspace_root() -> std::io::Result<PathBuf> {
    let mut dir = std::env::current_dir()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no ancestor directory contains Cargo.toml and crates/",
            ));
        }
    }
}
