//! Whole-program reachability analyses (`cargo xtask analyze`).
//!
//! Three analyses run over the conservative call graph built by
//! [`crate::parser`] → [`crate::symbols`] → [`crate::callgraph`]:
//!
//! 1. **Determinism taint** — transitive reachability from the declared
//!    deterministic entry points ([`crate::config::ANALYZE_ENTRY_POINTS`]:
//!    engine stages, samplers, sparsifier drains, linalg kernels) to any
//!    nondeterminism source: `Instant::now` / `SystemTime::now`,
//!    `thread_rng` / `from_entropy`, `HashMap`/`HashSet` (hash-order
//!    iteration), and `Ordering::Relaxed` without an `// ordering:`
//!    justification. This subsumes the per-file L2/L5 lints: a helper in
//!    `utils` that reads the clock now fails even though `utils` is off
//!    the per-file deterministic-path list. Sources justified by the
//!    same reasoned `xtask:allow` comments the lints accept are
//!    counted but not findings.
//! 2. **Panic surface** — every `unwrap`/`expect`/`panic!`-class site
//!    reachable from the entry points, ranked by call depth. A site is
//!    justified by an `xtask:panic-ok(reason)` comment on the same line
//!    or up to three lines above; the gate requires zero *unjustified*
//!    sites. Slice-index, integer-division, and `assert!` sites are
//!    counted and ratcheted but do not require per-site justification
//!    (documented in DESIGN.md: they are dominated by bounds-checked
//!    indexing idioms and deliberate invariant checks).
//! 3. **Unsafe reach** — for each designated unsafe module
//!    ([`crate::config::L1_UNSAFE_ISOLATED`]), the set of public APIs
//!    whose call chains enter it, cross-checked against DESIGN.md's
//!    inventory: every designated module must be named in DESIGN.md and
//!    must actually contain `unsafe`.
//!
//! All three emit into one [`AnalysisReport`] with a machine-readable
//! JSON form whose flat `counts` block is ratcheted monotonically
//! downward against `results/ANALYSIS_baseline.json` in CI.

use std::fs;
use std::io;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::config;
use crate::lexer::TokKind;
use crate::lints::{parse_allows, Allow};
use crate::parser::{parse_file, ParsedFile};
use crate::symbols::{FnId, Symbols};
use crate::walk;

/// Nondeterminism-source kinds the taint analysis recognises.
const TAINT_KINDS: &[(&str, &str)] = &[
    ("instant_now", "L5"),
    ("system_time_now", "L5"),
    ("thread_rng", "L5"),
    ("from_entropy", "L5"),
    ("hash_order", "L2"),
    ("relaxed_ordering", "L4"),
];

/// Panic-site kinds in the gated class (require `xtask:panic-ok`).
const PANIC_GATE_KINDS: &[&str] =
    &["unwrap", "expect", "panic", "unreachable", "todo", "unimplemented"];

/// Macro names counted as deliberate invariant checks (info class).
const ASSERT_MACROS: &[&str] =
    &["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Analysis configuration: entry points and the unsafe-module inventory.
/// [`AnalyzeConfig::default`] mirrors the workspace constants in
/// [`crate::config`]; tests construct their own over fixture trees.
pub struct AnalyzeConfig {
    /// Deterministic-path entry points as `(file path, fn name)`.
    pub entry_points: Vec<(String, String)>,
    /// Designated unsafe modules (file paths).
    pub unsafe_modules: Vec<String>,
    /// DESIGN.md contents for the inventory cross-check (`None` skips).
    pub design_doc: Option<String>,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            entry_points: config::ANALYZE_ENTRY_POINTS
                .iter()
                .map(|&(f, n)| (f.to_string(), n.to_string()))
                .collect(),
            unsafe_modules: config::L1_UNSAFE_ISOLATED
                .iter()
                .map(|&(_, m)| m.to_string())
                .collect(),
            design_doc: None,
        }
    }
}

/// One determinism-taint finding: a nondeterminism source reachable from
/// a deterministic entry point.
#[derive(Debug)]
pub struct TaintFinding {
    /// Source kind (`instant_now`, `hash_order`, …).
    pub kind: &'static str,
    /// File containing the source site.
    pub file: String,
    /// 1-based line of the source token.
    pub line: u32,
    /// 1-based column of the source token.
    pub col: u32,
    /// Display name of the containing function.
    pub func: String,
    /// Entry point the chain starts from.
    pub entry: String,
    /// Call depth from the entry point.
    pub depth: u32,
    /// Example call chain, entry first.
    pub chain: Vec<String>,
}

/// One panic-surface site reachable from an entry point.
#[derive(Debug)]
pub struct PanicFinding {
    /// Site kind (`unwrap`, `expect`, `panic`, …).
    pub kind: &'static str,
    /// File containing the site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Display name of the containing function.
    pub func: String,
    /// Entry point the chain starts from.
    pub entry: String,
    /// Call depth from the entry point.
    pub depth: u32,
    /// Whether a reasoned `xtask:panic-ok(..)` covers the site.
    pub justified: bool,
}

/// Public APIs whose call chains enter one designated unsafe module.
#[derive(Debug)]
pub struct UnsafeReach {
    /// The designated module's file path.
    pub module: String,
    /// Sorted display names of public functions reaching into it.
    pub public_apis: Vec<String>,
}

/// Result of the DESIGN.md inventory cross-check.
#[derive(Debug)]
pub struct Inventory {
    /// Whether a DESIGN.md was available to check against.
    pub checked: bool,
    /// Designated modules not named in DESIGN.md.
    pub missing_in_design: Vec<String>,
    /// Designated modules that contain no `unsafe` token (stale entry).
    pub without_unsafe: Vec<String>,
}

impl Inventory {
    /// Whether the inventory is consistent (vacuously true unchecked).
    pub fn ok(&self) -> bool {
        self.missing_in_design.is_empty() && self.without_unsafe.is_empty()
    }
}

/// Informational (non-gated, ratcheted) panic-adjacent site counts.
#[derive(Debug, Default)]
pub struct InfoCounts {
    /// `expr[idx]` slice-index sites in reachable functions.
    pub slice_index: usize,
    /// Integer `/` / `%` sites with a non-constant divisor.
    pub int_div: usize,
    /// `assert!`-family invariant checks.
    pub assert_sites: usize,
    /// Gate-class sites in vendored shims (`ANALYZE_VENDOR_EXEMPT`):
    /// counted and ratcheted, never failed — the shim mirrors an external
    /// crate's panic contract.
    pub vendored_exempt: usize,
}

/// The complete analysis report.
pub struct AnalysisReport {
    /// Unjustified determinism-taint findings (the gate requires none).
    pub taint: Vec<TaintFinding>,
    /// Reachable nondeterminism sources carrying a reasoned allow.
    pub taint_justified: usize,
    /// Gated panic sites (justified and not), ranked most-severe first.
    pub panic: Vec<PanicFinding>,
    /// Informational site counts.
    pub info: InfoCounts,
    /// Per-module unsafe-reach sets.
    pub unsafe_reach: Vec<UnsafeReach>,
    /// DESIGN.md inventory cross-check.
    pub inventory: Inventory,
    /// Malformed directives (`xtask:panic-ok` without a reason).
    pub directive_errors: Vec<String>,
    /// Configured entry points that matched no function (a misconfigured
    /// entry silently under-approximates, so this gates).
    pub missing_entries: Vec<String>,
    /// Total functions in the symbol table.
    pub functions: usize,
    /// Total resolved call edges.
    pub edges: usize,
    /// Entry-point functions found.
    pub entries_found: usize,
}

impl AnalysisReport {
    /// Number of unjustified gated panic sites.
    pub fn panic_unjustified(&self) -> usize {
        self.panic.iter().filter(|p| !p.justified).count()
    }

    /// Number of justified gated panic sites.
    pub fn panic_justified(&self) -> usize {
        self.panic.iter().filter(|p| p.justified).count()
    }

    /// Total public APIs across all unsafe-reach sets.
    pub fn unsafe_reach_apis(&self) -> usize {
        self.unsafe_reach.iter().map(|u| u.public_apis.len()).sum()
    }

    /// Whether the analysis gate passes.
    pub fn ok(&self) -> bool {
        self.taint.is_empty()
            && self.panic_unjustified() == 0
            && self.directive_errors.is_empty()
            && self.missing_entries.is_empty()
            && self.inventory.ok()
    }
}

/// Runs all analyses over the workspace rooted at `root`, reading
/// DESIGN.md for the inventory cross-check when present.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalysisReport> {
    let mut files = Vec::new();
    for rel in walk::workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        files.push(parse_file(&rel.to_string_lossy(), &src));
    }
    let cfg = AnalyzeConfig {
        design_doc: fs::read_to_string(root.join("DESIGN.md")).ok(),
        ..Default::default()
    };
    Ok(analyze_files(&files, &cfg))
}

/// Runs all analyses over already-parsed files.
pub fn analyze_files(files: &[ParsedFile], cfg: &AnalyzeConfig) -> AnalysisReport {
    let symbols = Symbols::build(files);
    let graph = CallGraph::build(files, &symbols);

    // Entry set.
    let mut entries: Vec<FnId> = Vec::new();
    let mut missing_entries = Vec::new();
    for (file, name) in &cfg.entry_points {
        let mut found = false;
        for (id, fr) in symbols.fns.iter().enumerate() {
            let f = &files[fr.file];
            let item = &f.fns[fr.item];
            if f.path == *file && item.name == *name && !item.in_test {
                entries.push(id);
                found = true;
            }
        }
        if !found {
            missing_entries.push(format!("{file}::{name}"));
        }
    }
    let reach = graph.reach(&entries);

    let display = |id: FnId| -> String {
        let fr = symbols.fns[id];
        let item = &files[fr.file].fns[fr.item];
        match &item.owner {
            Some(o) => format!("{}::{}", o, item.name),
            None => item.name.clone(),
        }
    };
    let chain_of = |mut id: FnId| -> Vec<String> {
        let mut chain = vec![display(id)];
        while let Some(Some((_, Some(p)))) = reach.get(id).copied() {
            chain.push(display(p));
            id = p;
        }
        chain.reverse();
        chain
    };

    // Per-function site extraction on reachable, non-test functions.
    let mut taint = Vec::new();
    let mut taint_justified = 0usize;
    let mut panic = Vec::new();
    let mut info = InfoCounts::default();
    let mut directive_errors = Vec::new();

    // Directive well-formedness is checked file-wide (a malformed
    // justification must fail even if its site is unreachable).
    for f in files {
        for c in &f.comments {
            let mut rest = c.text.as_str();
            while let Some(pos) = rest.find("xtask:panic-ok(") {
                rest = &rest[pos + "xtask:panic-ok(".len()..];
                let reason = rest.find(')').map(|close| rest[..close].trim().to_string());
                if reason.as_deref().is_none_or(|r| r.is_empty()) {
                    directive_errors.push(format!(
                        "{}:{}: `xtask:panic-ok` without a reason; write \
                         `xtask:panic-ok(<why this cannot panic / why aborting is right>)`",
                        f.path, c.line
                    ));
                }
            }
        }
    }

    for (id, fr) in symbols.fns.iter().enumerate() {
        let Some((depth, _)) = reach[id] else { continue };
        let f = &files[fr.file];
        let item = &f.fns[fr.item];
        if item.in_test {
            continue;
        }
        let Some((bs, be)) = item.body else { continue };
        let allows = parse_allows(&f.comments);
        let entry_name = chain_of(id).first().cloned().unwrap_or_default();
        let chain = chain_of(id);

        for site in taint_sites(f, bs, be) {
            if site.justified || allow_covers(&allows, site.allow_lint, site.line) {
                taint_justified += 1;
            } else {
                taint.push(TaintFinding {
                    kind: site.kind,
                    file: f.path.clone(),
                    line: site.line,
                    col: site.col,
                    func: display(id),
                    entry: entry_name.clone(),
                    depth,
                    chain: chain.clone(),
                });
            }
        }
        let vendor_exempt = config::path_in(&f.path, config::ANALYZE_VENDOR_EXEMPT);
        for site in panic_sites(f, bs, be) {
            match site.class {
                SiteClass::Gate if vendor_exempt => info.vendored_exempt += 1,
                SiteClass::Gate => panic.push(PanicFinding {
                    kind: site.kind,
                    file: f.path.clone(),
                    line: site.line,
                    col: site.col,
                    func: display(id),
                    entry: entry_name.clone(),
                    depth,
                    justified: panic_ok_covers(f, site.line),
                }),
                SiteClass::SliceIndex => info.slice_index += 1,
                SiteClass::IntDiv => info.int_div += 1,
                SiteClass::Assert => info.assert_sites += 1,
            }
        }
    }
    taint.sort_by(|a, b| (a.depth, &a.file, a.line, a.col).cmp(&(b.depth, &b.file, b.line, b.col)));
    panic.sort_by(|a, b| {
        (a.justified, a.depth, &a.file, a.line, a.col).cmp(&(
            b.justified,
            b.depth,
            &b.file,
            b.line,
            b.col,
        ))
    });

    // Unsafe reach: public APIs whose chains enter each designated module.
    let mut unsafe_reach = Vec::new();
    for module in &cfg.unsafe_modules {
        let targets: Vec<FnId> = symbols
            .fns
            .iter()
            .enumerate()
            .filter(|(_, fr)| files[fr.file].path == *module)
            .map(|(id, _)| id)
            .collect();
        let into = graph.reaches_into(&targets);
        let mut apis: Vec<String> = symbols
            .fns
            .iter()
            .enumerate()
            .filter(|&(id, fr)| {
                let item = &files[fr.file].fns[fr.item];
                into[id] && item.is_pub && !item.in_test
            })
            .map(|(id, fr)| format!("{}::{}", files[fr.file].path, display(id)))
            .collect();
        apis.sort();
        apis.dedup();
        unsafe_reach.push(UnsafeReach { module: module.clone(), public_apis: apis });
    }

    // Inventory cross-check against DESIGN.md.
    let inventory = Inventory {
        checked: cfg.design_doc.is_some(),
        missing_in_design: match &cfg.design_doc {
            Some(doc) => cfg
                .unsafe_modules
                .iter()
                .filter(|m| {
                    // Match on the file name (`mmap.rs`) — DESIGN.md
                    // names modules, not full paths.
                    let name = m.rsplit('/').next().unwrap_or(m);
                    !doc.contains(name)
                })
                .cloned()
                .collect(),
            None => Vec::new(),
        },
        without_unsafe: cfg
            .unsafe_modules
            .iter()
            .filter(|m| {
                files.iter().any(|f| {
                    f.path == **m
                        && !f
                            .tokens
                            .iter()
                            .any(|t| t.kind == TokKind::Ident && !t.raw && t.text == "unsafe")
                })
            })
            .cloned()
            .collect(),
    };

    AnalysisReport {
        taint,
        taint_justified,
        panic,
        info,
        unsafe_reach,
        inventory,
        directive_errors,
        missing_entries,
        functions: symbols.fns.len(),
        edges: graph.edges.iter().map(Vec::len).sum(),
        entries_found: entries.len(),
    }
}

impl AnalysisReport {
    /// Renders the report as a JSON document. The flat `counts` block
    /// (one key per line) is the ratchet surface compared against
    /// `results/ANALYSIS_baseline.json`; its schema is pinned by a
    /// golden-file test.
    pub fn to_json(&self) -> String {
        use crate::diagnostics::json_escape as esc;
        let mut s = String::from("{\n  \"schema_version\": 1,\n  \"counts\": {\n");
        let counts: &[(&str, usize)] = &[
            ("functions", self.functions),
            ("edges", self.edges),
            ("entry_points", self.entries_found),
            ("taint_unjustified", self.taint.len()),
            ("taint_justified", self.taint_justified),
            ("panic_unjustified", self.panic_unjustified()),
            ("panic_justified", self.panic_justified()),
            ("slice_index", self.info.slice_index),
            ("int_div", self.info.int_div),
            ("assert_sites", self.info.assert_sites),
            ("panic_vendor_exempt", self.info.vendored_exempt),
            ("unsafe_reach_apis", self.unsafe_reach_apis()),
            ("directive_errors", self.directive_errors.len()),
        ];
        for (i, (k, v)) in counts.iter().enumerate() {
            let comma = if i + 1 < counts.len() { "," } else { "" };
            s.push_str(&format!("    \"{k}\": {v}{comma}\n"));
        }
        s.push_str(&format!("  }},\n  \"ok\": {},\n", self.ok()));
        s.push_str("  \"taint\": [");
        for (i, t) in self.taint.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"fn\": \"{}\", \"entry\": \"{}\", \"depth\": {}, \"chain\": \"{}\"}}",
                t.kind,
                esc(&t.file),
                t.line,
                t.col,
                esc(&t.func),
                esc(&t.entry),
                t.depth,
                esc(&t.chain.join(" -> "))
            ));
        }
        s.push_str(if self.taint.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"panic\": [");
        for (i, p) in self.panic.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"fn\": \"{}\", \"entry\": \"{}\", \"depth\": {}, \"justified\": {}}}",
                p.kind,
                esc(&p.file),
                p.line,
                p.col,
                esc(&p.func),
                esc(&p.entry),
                p.depth,
                p.justified
            ));
        }
        s.push_str(if self.panic.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"unsafe_reach\": [");
        for (i, u) in self.unsafe_reach.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let apis: Vec<String> =
                u.public_apis.iter().map(|a| format!("\"{}\"", esc(a))).collect();
            s.push_str(&format!(
                "\n    {{\"module\": \"{}\", \"count\": {}, \"public_apis\": [{}]}}",
                esc(&u.module),
                u.public_apis.len(),
                apis.join(", ")
            ));
        }
        s.push_str(if self.unsafe_reach.is_empty() { "],\n" } else { "\n  ],\n" });
        let list = |items: &[String]| -> String {
            items.iter().map(|m| format!("\"{}\"", esc(m))).collect::<Vec<_>>().join(", ")
        };
        s.push_str(&format!(
            "  \"inventory\": {{\"checked\": {}, \"ok\": {}, \"missing_in_design\": [{}], \
             \"without_unsafe\": [{}]}},\n",
            self.inventory.checked,
            self.inventory.ok(),
            list(&self.inventory.missing_in_design),
            list(&self.inventory.without_unsafe)
        ));
        s.push_str(&format!("  \"missing_entries\": [{}],\n", list(&self.missing_entries)));
        s.push_str(&format!("  \"directive_errors\": [{}]\n}}\n", list(&self.directive_errors)));
        s
    }

    /// Renders a human-readable ranked report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "xtask analyze: {} fns, {} edges, {} entry points\n",
            self.functions, self.edges, self.entries_found
        ));
        for m in &self.missing_entries {
            s.push_str(&format!("error: entry point matched no function: {m}\n"));
        }
        for e in &self.directive_errors {
            s.push_str(&format!("error: {e}\n"));
        }
        s.push_str(&format!(
            "determinism taint: {} unjustified, {} justified sources\n",
            self.taint.len(),
            self.taint_justified
        ));
        for t in &self.taint {
            s.push_str(&format!(
                "  {}:{}:{}: [taint/{}] in `{}` at depth {} via {}\n",
                t.file,
                t.line,
                t.col,
                t.kind,
                t.func,
                t.depth,
                t.chain.join(" -> ")
            ));
        }
        s.push_str(&format!(
            "panic surface: {} unjustified, {} justified (info: {} slice-index, {} int-div, \
             {} assert, {} vendored)\n",
            self.panic_unjustified(),
            self.panic_justified(),
            self.info.slice_index,
            self.info.int_div,
            self.info.assert_sites,
            self.info.vendored_exempt
        ));
        for p in self.panic.iter().filter(|p| !p.justified) {
            s.push_str(&format!(
                "  {}:{}:{}: [panic/{}] in `{}` reachable from `{}` at depth {} — add \
                 `xtask:panic-ok(reason)` or remove\n",
                p.file, p.line, p.col, p.kind, p.func, p.entry, p.depth
            ));
        }
        for u in &self.unsafe_reach {
            s.push_str(&format!(
                "unsafe reach: {} <- {} public APIs\n",
                u.module,
                u.public_apis.len()
            ));
        }
        if self.inventory.checked {
            for m in &self.inventory.missing_in_design {
                s.push_str(&format!(
                    "error: designated unsafe module {m} is not named in DESIGN.md\n"
                ));
            }
            for m in &self.inventory.without_unsafe {
                s.push_str(&format!(
                    "error: designated unsafe module {m} contains no unsafe code (stale \
                     inventory entry)\n"
                ));
            }
        }
        s.push_str(if self.ok() { "xtask analyze: ok\n" } else { "xtask analyze: FAILED\n" });
        s
    }
}

/// Whether a reasoned allow for `lint` covers `line` (same window as the
/// per-file lints: same line, or ending at most three lines above).
fn allow_covers(allows: &[Allow], lint: &str, line: u32) -> bool {
    allows.iter().any(|a| {
        a.has_reason
            && a.lint == lint
            && (a.line == line || (a.end_line < line && line - a.end_line <= 3))
    })
}

/// Whether a reasoned `xtask:panic-ok(..)` comment covers `line`.
pub(crate) fn panic_ok_covers(f: &ParsedFile, line: u32) -> bool {
    f.comments.iter().any(|c| {
        !c.is_doc()
            && has_reasoned_panic_ok(&c.text)
            && (c.line == line || (c.end_line < line && line - c.end_line <= 3))
    })
}

fn has_reasoned_panic_ok(text: &str) -> bool {
    text.find("xtask:panic-ok(").is_some_and(|pos| {
        let rest = &text[pos + "xtask:panic-ok(".len()..];
        rest.find(')').is_some_and(|close| !rest[..close].trim().is_empty())
    })
}

struct TaintSite {
    kind: &'static str,
    /// Lint code whose `xtask:allow` justifies this source.
    allow_lint: &'static str,
    line: u32,
    col: u32,
    /// Pre-justified by a path whitelist or `// ordering:` comment.
    justified: bool,
}

/// Extracts nondeterminism sources from one body token range.
fn taint_sites(f: &ParsedFile, bs: usize, be: usize) -> Vec<TaintSite> {
    let toks = &f.tokens;
    let timer_exempt = config::path_in(&f.path, config::L5_TIMER_WHITELIST);
    let mut out = Vec::new();
    let mut push = |kind: &'static str, line: u32, col: u32, justified: bool| {
        let allow_lint = TAINT_KINDS.iter().find(|(k, _)| *k == kind).map(|(_, l)| *l).unwrap();
        out.push(TaintSite { kind, allow_lint, line, col, justified });
    };
    let seq = |i: usize, texts: &[&str]| {
        texts.iter().enumerate().all(|(k, w)| toks.get(i + k).is_some_and(|t| t.text == *w))
    };
    let has_comment_near = |marker: &str, line: u32| {
        f.comments.iter().any(|c| {
            !c.is_doc()
                && c.text.contains(marker)
                && ((c.end_line <= line && line - c.end_line <= 6) || c.line == line)
        })
    };
    for (i, t) in toks.iter().enumerate().take(be.min(toks.len())).skip(bs) {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" if seq(i, &["Instant", ":", ":", "now"]) => {
                push("instant_now", t.line, t.col, timer_exempt);
            }
            "SystemTime" if seq(i, &["SystemTime", ":", ":", "now"]) => {
                push("system_time_now", t.line, t.col, false);
            }
            "thread_rng" => push("thread_rng", t.line, t.col, false),
            "from_entropy" => push("from_entropy", t.line, t.col, false),
            "HashMap" | "HashSet" => push("hash_order", t.line, t.col, false),
            "Ordering" if seq(i, &["Ordering", ":", ":", "Relaxed"]) => {
                push("relaxed_ordering", t.line, t.col, has_comment_near("ordering:", t.line));
            }
            _ => {}
        }
    }
    out
}

enum SiteClass {
    Gate,
    SliceIndex,
    IntDiv,
    Assert,
}

struct PanicSite {
    kind: &'static str,
    class: SiteClass,
    line: u32,
    col: u32,
}

/// Extracts panic-surface sites from one body token range.
fn panic_sites(f: &ParsedFile, bs: usize, be: usize) -> Vec<PanicSite> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in bs..be.min(toks.len()) {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let next_is = |txt: &str| toks.get(i + 1).is_some_and(|n| n.text == txt);
                let prev_is = |txt: &str| i > 0 && toks[i - 1].text == txt;
                match t.text.as_str() {
                    "unwrap" | "expect" if prev_is(".") && next_is("(") => {
                        let kind = if t.text == "unwrap" { "unwrap" } else { "expect" };
                        out.push(PanicSite {
                            kind,
                            class: SiteClass::Gate,
                            line: t.line,
                            col: t.col,
                        });
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => {
                        let kind = PANIC_GATE_KINDS
                            .iter()
                            .find(|&&k| k == t.text)
                            .copied()
                            .unwrap_or("panic");
                        out.push(PanicSite {
                            kind,
                            class: SiteClass::Gate,
                            line: t.line,
                            col: t.col,
                        });
                    }
                    name if ASSERT_MACROS.contains(&name) && next_is("!") => {
                        out.push(PanicSite {
                            kind: "assert",
                            class: SiteClass::Assert,
                            line: t.line,
                            col: t.col,
                        });
                    }
                    _ => {}
                }
            }
            TokKind::Punct => match t.text.as_str() {
                // Expression-position indexing: `ident[`, `)[`, `][`.
                "[" if i > bs
                    && (toks[i - 1].kind == TokKind::Ident
                        || toks[i - 1].text == ")"
                        || toks[i - 1].text == "]")
                    && !(i >= 2 && toks[i - 2].text == "#") =>
                {
                    out.push(PanicSite {
                        kind: "slice_index",
                        class: SiteClass::SliceIndex,
                        line: t.line,
                        col: t.col,
                    });
                }
                // Integer division/modulo with a non-constant divisor:
                // a float operand or a nonzero literal divisor cannot
                // trap.
                "/" | "%"
                    if i > bs
                        && matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Int)
                            | matches!(toks[i - 1].text.as_str(), ")" | "]") =>
                {
                    let lhs_float = toks[i - 1].kind == TokKind::Float;
                    let rhs = toks.get(i + 1);
                    let rhs_safe = rhs.is_none_or(|r| {
                        r.kind == TokKind::Float
                            || (r.kind == TokKind::Int
                                && r.text.trim_matches(|c: char| c == '_') != "0")
                    });
                    if !lhs_float && !rhs_safe {
                        out.push(PanicSite {
                            kind: "int_div",
                            class: SiteClass::IntDiv,
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(entries: &[(&str, &str)]) -> AnalyzeConfig {
        AnalyzeConfig {
            entry_points: entries.iter().map(|&(f, n)| (f.to_string(), n.to_string())).collect(),
            unsafe_modules: Vec::new(),
            design_doc: None,
        }
    }

    fn run(files: &[(&str, &str)], entries: &[(&str, &str)]) -> AnalysisReport {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        analyze_files(&parsed, &cfg_for(entries))
    }

    #[test]
    fn transitive_taint_across_crates() {
        // The per-file lints cannot see this: the deterministic entry
        // calls a helper in another crate that reads the clock.
        let r = run(
            &[
                ("crates/core/src/a.rs", "pub fn entry() { lightne_utils::tick(); }\n"),
                ("crates/utils/src/help.rs", "pub fn tick() { let _ = Instant::now(); }\n"),
            ],
            &[("crates/core/src/a.rs", "entry")],
        );
        assert_eq!(r.taint.len(), 1, "{:?}", r.taint);
        assert_eq!(r.taint[0].kind, "instant_now");
        assert_eq!((r.taint[0].line, r.taint[0].col), (1, 25));
        assert_eq!(r.taint[0].chain, ["entry", "tick"]);
    }

    #[test]
    fn unreachable_source_is_not_a_finding() {
        let r = run(
            &[
                ("crates/core/src/a.rs", "pub fn entry() {}\n"),
                ("crates/utils/src/help.rs", "pub fn tick() { let _ = Instant::now(); }\n"),
            ],
            &[("crates/core/src/a.rs", "entry")],
        );
        assert!(r.taint.is_empty());
    }

    #[test]
    fn justified_relaxed_is_not_taint() {
        let r = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn entry() {\n  // ordering: advisory counter only.\n  \
                 x.load(Ordering::Relaxed);\n  y.load(Ordering::Relaxed);\n}\n",
            )],
            &[("crates/core/src/a.rs", "entry")],
        );
        // First Relaxed justified by the ordering: comment; second is
        // within its 6-line window too (matching the L4 rule).
        assert!(r.taint.is_empty(), "{:?}", r.taint);
    }

    #[test]
    fn panic_surface_requires_panic_ok() {
        let r = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn entry(v: &[u32]) {\n  let _ = v.first().unwrap();\n  \
                 // xtask:panic-ok(slice is non-empty by construction above)\n  \
                 let _ = v.last().unwrap();\n}\n",
            )],
            &[("crates/core/src/a.rs", "entry")],
        );
        assert_eq!(r.panic.len(), 2);
        assert_eq!(r.panic_unjustified(), 1);
        assert_eq!(r.panic_justified(), 1);
        assert_eq!(r.panic[0].line, 2, "unjustified ranks first");
    }

    #[test]
    fn empty_panic_ok_reason_is_an_error() {
        let r = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn entry() {\n  // xtask:panic-ok()\n  x.unwrap();\n}\n",
            )],
            &[("crates/core/src/a.rs", "entry")],
        );
        assert_eq!(r.directive_errors.len(), 1);
        assert!(!r.ok());
    }

    #[test]
    fn missing_entry_point_fails() {
        let r = run(
            &[("crates/core/src/a.rs", "pub fn entry() {}\n")],
            &[("crates/core/src/a.rs", "nonexistent")],
        );
        assert_eq!(r.missing_entries, ["crates/core/src/a.rs::nonexistent"]);
        assert!(!r.ok());
    }

    #[test]
    fn info_sites_are_counted_not_gated() {
        let r = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn entry(v: &[u32], n: usize) -> u32 {\n  assert!(n > 0);\n  \
                 v[n] + v.len() as u32 / n as u32 + v[0] / 2\n}\n",
            )],
            &[("crates/core/src/a.rs", "entry")],
        );
        assert_eq!(r.info.slice_index, 2);
        assert_eq!(r.info.int_div, 1, "literal divisor 2 is safe");
        assert_eq!(r.info.assert_sites, 1);
        assert!(r.ok(), "info sites alone do not fail the gate");
    }

    #[test]
    fn unsafe_reach_lists_public_apis() {
        let parsed: Vec<ParsedFile> = [
            ("crates/g/src/api.rs", "pub fn load() { crate::mmap::map_region(); }\n"),
            ("crates/g/src/mmap.rs", "pub fn map_region() { unsafe { () } }\n"),
            ("crates/g/src/other.rs", "pub fn pure() {}\n"),
        ]
        .iter()
        .map(|(p, s)| parse_file(p, s))
        .collect();
        let cfg = AnalyzeConfig {
            entry_points: vec![("crates/g/src/api.rs".into(), "load".into())],
            unsafe_modules: vec!["crates/g/src/mmap.rs".into()],
            design_doc: Some("inventory: mmap.rs is the unsafe module".into()),
        };
        let r = analyze_files(&parsed, &cfg);
        assert_eq!(r.unsafe_reach.len(), 1);
        assert_eq!(
            r.unsafe_reach[0].public_apis,
            ["crates/g/src/api.rs::load", "crates/g/src/mmap.rs::map_region"]
        );
        assert!(r.inventory.checked && r.inventory.ok());
    }

    #[test]
    fn inventory_mismatch_fails() {
        let parsed = vec![parse_file("crates/g/src/mmap.rs", "pub fn f() { unsafe { () } }\n")];
        let cfg = AnalyzeConfig {
            entry_points: vec![("crates/g/src/mmap.rs".into(), "f".into())],
            unsafe_modules: vec!["crates/g/src/mmap.rs".into()],
            design_doc: Some("no inventory here".into()),
        };
        let r = analyze_files(&parsed, &cfg);
        assert_eq!(r.inventory.missing_in_design, ["crates/g/src/mmap.rs"]);
        assert!(!r.ok());
    }

    #[test]
    fn trait_method_call_taints_through_impl() {
        let r = run(
            &[(
                "crates/core/src/a.rs",
                "pub trait Clock { fn read(&self) -> u64; }\n\
                 pub struct Wall;\n\
                 impl Clock for Wall { fn read(&self) -> u64 { let _ = Instant::now(); 0 } }\n\
                 pub fn entry(c: &Wall) -> u64 { c.read() }\n",
            )],
            &[("crates/core/src/a.rs", "entry")],
        );
        assert_eq!(r.taint.len(), 1, "{:?}", r.taint);
        assert_eq!(r.taint[0].line, 3);
        assert_eq!(r.taint[0].func, "Wall::read");
    }
}
