//! Diagnostic type and rendering (human text and machine JSON).
//!
//! JSON is emitted by hand: the offline workspace has no serde, and the
//! shape is a flat list of objects with string/number fields, so escaping
//! is the only real work.

use std::fmt;

/// One lint violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint code, `L1`..`L5`.
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// 1-based column of the violation.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.lint, self.message)
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON document:
/// `{"violations": [...], "count": N, "ok": bool}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            d.lint,
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"count\": {},\n  \"ok\": {}\n}}\n",
        diags.len(),
        diags.is_empty()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_clickable() {
        let d = Diagnostic {
            lint: "L2",
            file: "crates/core/src/engine.rs".into(),
            line: 42,
            col: 5,
            message: "HashMap iteration".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/engine.rs:42:5: [L2] HashMap iteration");
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic {
            lint: "L1",
            file: "a\\b.rs".into(),
            line: 1,
            col: 2,
            message: "needs \"SAFETY\"".into(),
        }];
        let j = to_json(&diags);
        assert!(j.contains("\"file\": \"a\\\\b.rs\""));
        assert!(j.contains("\\\"SAFETY\\\""));
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"ok\": false"));
    }

    #[test]
    fn empty_is_ok() {
        let j = to_json(&[]);
        assert!(j.contains("\"count\": 0"));
        assert!(j.contains("\"ok\": true"));
    }
}
