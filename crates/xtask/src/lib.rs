//! Workspace invariant checker for the LightNE reproduction.
//!
//! `cargo xtask check` runs five custom lints that encode invariants the
//! compiler cannot see — the reproducibility and memory-safety contract
//! the rest of the workspace is built on. See DESIGN.md, "Static analysis
//! & concurrency verification", for the catalog and rationale; the lints
//! themselves live in [`lints`] and their path scoping in [`config`].
//!
//! The engine is token-level: a small hand-rolled lexer ([`lexer`])
//! rather than a full parser, because every lint in the catalog is
//! decidable from tokens plus brace matching, and the offline build
//! environment has no `syn`. Diagnostics carry `file:line:col` spans and
//! render as text or JSON ([`diagnostics`]).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod analyze;
pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod symbols;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use analyze::{analyze_workspace, AnalysisReport, AnalyzeConfig};
pub use diagnostics::Diagnostic;
pub use lints::{check_source, stale_suppressions};

/// Lints every workspace source file under `root` and returns all
/// diagnostics, ordered by file then line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in walk::workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        diags.extend(check_source(&rel.to_string_lossy(), &src));
    }
    Ok(diags)
}

/// Audits every workspace source file for stale suppressions (reasoned
/// `xtask:allow` / `xtask:panic-ok` comments that no longer cover a real
/// diagnostic or site).
pub fn stale_workspace_suppressions(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in walk::workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        diags.extend(stale_suppressions(&rel.to_string_lossy(), &src));
    }
    Ok(diags)
}
