//! Lint configuration: which paths each lint watches and which it
//! exempts. Centralised so the allowlists are auditable in one place —
//! `cargo xtask check` must pass with zero *undocumented* suppressions,
//! and every entry here carries its justification.

/// Modules on the deterministic numeric path. L2 (hash-order iteration)
/// and the `Instant::now` half of L5 apply only under these prefixes:
/// their outputs must be bitwise-reproducible across runs and thread
/// counts, so iteration order and wall-clock reads are correctness
/// hazards there, not style.
pub const DETERMINISTIC_PATH: &[&str] =
    &["crates/core/src", "crates/sparsifier/src", "crates/hashtable/src", "crates/linalg/src"];

/// Crate source trees whose `unsafe` is confined to one designated
/// module (the L1 isolation rule): any `unsafe` token under the prefix
/// but outside that module is a violation *even with a SAFETY comment*.
/// The graph crate's zero-copy mmap wrapper is the sole unsafe surface of
/// the format stack — everything above it (container parsing, Elias–Fano,
/// bit codecs) must stay fully safe so the auditable surface is one file.
/// Likewise the linalg crate confines all SIMD intrinsics to `simd.rs`,
/// the hash table its one prefetch hint to `prefetch.rs`, and the utils
/// crate its one affinity syscall to `affinity.rs` — the numeric kernels,
/// probe loops, and parallel helpers above them stay fully safe.
pub const L1_UNSAFE_ISOLATED: &[(&str, &str)] = &[
    ("crates/graph/src", "crates/graph/src/mmap.rs"),
    ("crates/linalg/src", "crates/linalg/src/simd.rs"),
    ("crates/hashtable/src", "crates/hashtable/src/prefetch.rs"),
    ("crates/utils/src", "crates/utils/src/affinity.rs"),
];

/// Files allowed to contain raw parallel float reductions (L3). These are
/// the fixed-block deterministic-reduction helpers themselves — the one
/// place where the block-splitting arithmetic lives — plus the CAS-loop
/// atomic floats they are built on.
pub const L3_WHITELIST: &[&str] = &[
    // parallel_reduce_sum / parallel_reduce_max: fixed DET_SUM_BLOCK
    // blocks folded in block order; thread-count independent by
    // construction.
    "crates/utils/src/parallel.rs",
    // AtomicF32/AtomicF64: the primitive the helpers justify.
    "crates/utils/src/atomic.rs",
];

/// Files allowed to use `Ordering::Relaxed` without a `// ordering:`
/// justification comment (L4). Empty by design: every Relaxed in the
/// hash-table crate must argue its own correctness inline.
pub const L4_WHITELIST: &[&str] = &[];

/// Paths where L4 (justified atomic orderings) applies: the lock-free
/// table's CAS/accumulate paths.
pub const L4_PATHS: &[&str] = &["crates/hashtable/src"];

/// Files exempt from the `Instant::now` half of L5: the timing
/// instrumentation layer itself and the benchmark harness, whose entire
/// purpose is wall-clock measurement. `SystemTime::now` and
/// `rand::thread_rng` have no whitelist — they are banned workspace-wide.
pub const L5_TIMER_WHITELIST: &[&str] = &["crates/utils/src/timer.rs", "crates/bench/"];

/// Deterministic-path entry points for the whole-program analyses
/// (`cargo xtask analyze`), as `(file, fn name)`. These are the public
/// surfaces whose output must be bitwise-reproducible: the stage-engine
/// driver, the embedding pipeline fronts, the samplers and sparsifier
/// drains, and the dense-linalg kernels. Reachability (determinism
/// taint, panic surface) is computed transitively from every function
/// matching one of these pairs; an entry that matches nothing fails the
/// analysis, so renames cannot silently shrink the analyzed surface.
pub const ANALYZE_ENTRY_POINTS: &[(&str, &str)] = &[
    // Stage engine + pipeline fronts.
    ("crates/core/src/engine.rs", "run_pipeline"),
    ("crates/core/src/pipeline.rs", "embed"),
    ("crates/core/src/pipeline.rs", "embed_with"),
    ("crates/core/src/pipeline.rs", "embed_weighted"),
    ("crates/core/src/pipeline.rs", "embed_weighted_with"),
    ("crates/core/src/propagation.rs", "spectral_propagation"),
    ("crates/core/src/propagation.rs", "spectral_propagation_matrices"),
    // Samplers and sparsifier drains.
    ("crates/sparsifier/src/construct.rs", "build_sparsifier"),
    ("crates/sparsifier/src/construct.rs", "sample_into"),
    ("crates/sparsifier/src/path_sampling.rs", "path_sample"),
    ("crates/sparsifier/src/weighted.rs", "weighted_path_sample"),
    ("crates/sparsifier/src/weighted.rs", "weighted_sample_into"),
    ("crates/sparsifier/src/sharded.rs", "build_sharded_sparsifier"),
    ("crates/sparsifier/src/sharded.rs", "build_weighted_sharded_sparsifier"),
    ("crates/sparsifier/src/sharded.rs", "sharded_to_netmf"),
    ("crates/sparsifier/src/sharded.rs", "weighted_sharded_to_netmf"),
    // Dense-linalg kernels.
    ("crates/linalg/src/rsvd.rs", "randomized_svd"),
    ("crates/linalg/src/kernels.rs", "gemm"),
    ("crates/linalg/src/qr.rs", "orthonormalize_columns"),
    ("crates/linalg/src/svd.rs", "jacobi_svd"),
    ("crates/linalg/src/svd.rs", "tall_thin_svd"),
];

/// Path prefixes exempt from the panic-surface *gate* (their gated
/// panic sites are counted under `panic_vendor_exempt`, not failed).
/// Vendored shims mirror an external crate's API contract — the loom
/// shim panics on lock poisoning because real loom does — so requiring
/// `xtask:panic-ok` rewrites there would drift the shim from the
/// interface it mimics. Determinism taint is still gated in these files.
pub const ANALYZE_VENDOR_EXEMPT: &[&str] = &["vendor/"];

/// Directories scanned by the workspace walk, relative to the repo root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "vendor/loom/src"];

/// Path fragments excluded from the walk. Fixtures are lint-violation
/// test inputs by design; the other vendored shims mirror external crates
/// and are linted only for L1 (handled by scanning vendor/loom, the only
/// vendored crate with `unsafe`).
pub const EXCLUDE: &[&str] = &["target/", "crates/xtask/tests/fixtures/"];

/// Returns true if `path` (workspace-relative, `/`-separated) starts with
/// any of the given prefixes.
pub fn path_in(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_path_matching() {
        assert!(path_in("crates/core/src/engine.rs", DETERMINISTIC_PATH));
        assert!(path_in("crates/hashtable/src/concurrent.rs", DETERMINISTIC_PATH));
        assert!(!path_in("crates/bench/src/main.rs", DETERMINISTIC_PATH));
        assert!(!path_in("crates/core/tests/x.rs", DETERMINISTIC_PATH));
    }

    #[test]
    fn whitelists() {
        assert!(path_in("crates/utils/src/parallel.rs", L3_WHITELIST));
        assert!(path_in("crates/bench/src/main.rs", L5_TIMER_WHITELIST));
        assert!(!path_in("crates/utils/src/rng.rs", L3_WHITELIST));
    }
}
