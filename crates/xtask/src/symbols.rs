//! Workspace symbol table: every `fn` item in every file, indexed for
//! the conservative name-based resolution the call graph uses.
//!
//! Resolution policy (see DESIGN.md, "Whole-program analysis"): the
//! analyses must *over*-approximate the call graph — a missed edge could
//! silently hide a nondeterminism source or panic site, while a spurious
//! edge only costs a justification comment. The table therefore resolves
//!
//! * free calls `name(..)` to **every free function** named `name` in the
//!   workspace (imports and re-exports cannot make this incomplete);
//! * method calls `.name(..)` to **every method** (fn with an owner,
//!   including trait default methods) named `name` — class-hierarchy
//!   analysis without the hierarchy;
//! * qualified calls `Owner::name(..)` to the methods of `Owner` when
//!   `Owner` is a workspace type (following `type` aliases and `Self`),
//!   and otherwise — unknown receiver, e.g. a generic parameter `T` with
//!   a trait bound — to **every function** named `name`, free or method.
//!
//! The single deliberate narrowing: a qualified call whose receiver is a
//! well-known `std`/`core` type (`Vec::new`, `Instant::now`, …) that has
//! no workspace `impl` resolves to nothing, because the callee is outside
//! the workspace. This is documented, not silent — the receiver list is
//! [`EXTERNAL_OWNERS`] and a workspace `impl` for such a type (e.g.
//! `impl GraphOps for Vec<…>`) still resolves through the owner index
//! first.

use std::collections::BTreeMap;

use crate::parser::ParsedFile;

/// Index of a function in the workspace-wide function list.
pub type FnId = usize;

/// A function's location: file index + fn index within that file.
#[derive(Debug, Clone, Copy)]
pub struct FnRef {
    /// Index into the parsed-file list.
    pub file: usize,
    /// Index into that file's `fns` vector.
    pub item: usize,
}

/// Well-known external (std/core/alloc) receiver types: a qualified call
/// through one of these resolves only via an explicit workspace `impl`,
/// never via the bare-name fallback. Keeping ubiquitous constructors like
/// `Vec::new` out of the fallback is what keeps the over-approximated
/// graph tractable; the list is closed under review and documented in
/// DESIGN.md.
pub const EXTERNAL_OWNERS: &[&str] = &[
    "Arc",
    "AtomicBool",
    "AtomicI64",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "BTreeMap",
    "BTreeSet",
    "Box",
    "BinaryHeap",
    "Cell",
    "Command",
    "Cow",
    "Duration",
    "File",
    "HashMap",
    "HashSet",
    "Instant",
    "Mutex",
    "Option",
    "Ordering",
    "OsStr",
    "OsString",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Result",
    "RwLock",
    "String",
    "SystemTime",
    "Vec",
    "VecDeque",
    "char",
    "f32",
    "f64",
    "i32",
    "i64",
    "str",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

/// The workspace symbol table.
pub struct Symbols {
    /// All functions, in (file, item) order. `FnId` indexes this.
    pub fns: Vec<FnRef>,
    by_free_name: BTreeMap<String, Vec<FnId>>,
    by_method_name: BTreeMap<String, Vec<FnId>>,
    by_owner_name: BTreeMap<(String, String), Vec<FnId>>,
    type_aliases: BTreeMap<String, String>,
    workspace_types: BTreeMap<String, ()>,
}

impl Symbols {
    /// Builds the table from all parsed files.
    pub fn build(files: &[ParsedFile]) -> Self {
        let mut s = Symbols {
            fns: Vec::new(),
            by_free_name: BTreeMap::new(),
            by_method_name: BTreeMap::new(),
            by_owner_name: BTreeMap::new(),
            type_aliases: BTreeMap::new(),
            workspace_types: BTreeMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            for ty in &f.types {
                s.workspace_types.insert(ty.clone(), ());
            }
            for (alias, target) in &f.type_aliases {
                s.type_aliases.insert(alias.clone(), target.clone());
            }
            for (ii, item) in f.fns.iter().enumerate() {
                let id = s.fns.len();
                s.fns.push(FnRef { file: fi, item: ii });
                match &item.owner {
                    Some(owner) => {
                        s.by_method_name.entry(item.name.clone()).or_default().push(id);
                        s.by_owner_name
                            .entry((owner.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        s.by_free_name.entry(item.name.clone()).or_default().push(id);
                    }
                }
            }
        }
        s
    }

    /// Resolves a free call `name(..)`.
    pub fn resolve_free(&self, name: &str) -> &[FnId] {
        self.by_free_name.get(name).map_or(&[], |v| v)
    }

    /// Resolves a method call `.name(..)` to every same-named method.
    pub fn resolve_method(&self, name: &str) -> &[FnId] {
        self.by_method_name.get(name).map_or(&[], |v| v)
    }

    /// Resolves a qualified call `owner::name(..)`. `self_type` is the
    /// enclosing impl's self type, used to substitute `Self`.
    pub fn resolve_qualified(&self, owner: &str, name: &str, self_type: Option<&str>) -> Vec<FnId> {
        // `Self::f()` → the enclosing impl type.
        let mut owner = match owner {
            "Self" => self_type.unwrap_or(owner),
            o => o,
        };
        // Follow one level of `type A = B;`.
        if let Some(target) = self.type_aliases.get(owner) {
            owner = target;
        }
        if let Some(v) = self.by_owner_name.get(&(owner.to_string(), name.to_string())) {
            return v.clone();
        }
        // A workspace type with no such method: the call goes through a
        // trait whose impl we attribute to the concrete type, so an empty
        // owner hit for a *known* type still falls through to same-named
        // methods (trait-object dispatch). A known-external std type
        // resolves to nothing — documented narrowing.
        if EXTERNAL_OWNERS.contains(&owner) {
            return Vec::new();
        }
        if self.workspace_types.contains_key(owner) {
            return self.resolve_method(name).to_vec();
        }
        // Unknown receiver: a module path segment, a generic parameter
        // with a trait bound, or a crate name. Fully conservative: every
        // function with that name, free or method.
        let mut out: Vec<FnId> = self.resolve_free(name).to_vec();
        out.extend_from_slice(self.resolve_method(name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn table(files: &[(&str, &str)]) -> (Vec<ParsedFile>, Symbols) {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        let sym = Symbols::build(&parsed);
        (parsed, sym)
    }

    #[test]
    fn free_and_method_indexes_are_disjoint() {
        let (_, s) = table(&[(
            "crates/a/src/lib.rs",
            "pub fn go() {}\nstruct S;\nimpl S { pub fn go(&self) {} }\n",
        )]);
        assert_eq!(s.resolve_free("go").len(), 1);
        assert_eq!(s.resolve_method("go").len(), 1);
    }

    #[test]
    fn qualified_known_owner_is_exact() {
        let (_, s) = table(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nimpl A { fn f(&self) {} }\nimpl B { fn f(&self) {} }\n",
        )]);
        assert_eq!(s.resolve_qualified("A", "f", None).len(), 1);
    }

    #[test]
    fn qualified_unknown_owner_over_approximates() {
        let (_, s) = table(&[(
            "crates/a/src/lib.rs",
            "pub fn f() {}\nstruct A;\nimpl A { fn f(&self) {} }\n",
        )]);
        // `T::f()` with generic `T`: both candidates.
        assert_eq!(s.resolve_qualified("T", "f", None).len(), 2);
    }

    #[test]
    fn qualified_external_owner_resolves_to_nothing() {
        let (_, s) = table(&[("crates/a/src/lib.rs", "pub fn new() {}\n")]);
        assert!(s.resolve_qualified("Vec", "new", None).is_empty());
    }

    #[test]
    fn external_owner_with_workspace_impl_still_resolves() {
        let (_, s) = table(&[(
            "crates/a/src/lib.rs",
            "trait Ops { fn deg(&self); }\nimpl Ops for Vec<u32> { fn deg(&self) {} }\n",
        )]);
        assert_eq!(s.resolve_qualified("Vec", "deg", None).len(), 1);
    }

    #[test]
    fn self_substitution_and_type_alias() {
        let (_, s) = table(&[(
            "crates/a/src/lib.rs",
            "struct Core;\nimpl Core { fn boot() {} }\npub type Engine = Core;\n",
        )]);
        assert_eq!(s.resolve_qualified("Self", "boot", Some("Core")).len(), 1);
        assert_eq!(s.resolve_qualified("Engine", "boot", None).len(), 1);
    }
}
