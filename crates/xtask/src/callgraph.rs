//! Conservative workspace call graph and reachability.
//!
//! Call sites are extracted from each function's body token range and
//! resolved through [`crate::symbols::Symbols`] (see that module's
//! docs for the over-approximation policy). The graph is an adjacency
//! list over [`FnId`]s; reachability is a breadth-first search that
//! records parent pointers so every finding can print an example call
//! chain from its entry point.

use crate::lexer::TokKind;
use crate::parser::{ParsedFile, KEYWORDS};
use crate::symbols::{FnId, Symbols};

/// How a call site was written, which determines how it was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` — free-function call.
    Free,
    /// `.name(..)` — method call.
    Method,
    /// `Owner::name(..)` — qualified path call.
    Qualified,
}

/// One extracted call site (kept for fixtures and debugging; the graph
/// itself stores only the resolved edges).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (after `use`-alias substitution).
    pub name: String,
    /// Receiver path segment for qualified calls.
    pub owner: Option<String>,
    /// Call syntax.
    pub kind: CallKind,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// `edges[f]` = functions `f` may call (sorted, deduplicated).
    pub edges: Vec<Vec<FnId>>,
    /// Extracted call sites per function (same indexing as `edges`).
    pub sites: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph for all parsed files over the symbol table.
    pub fn build(files: &[ParsedFile], symbols: &Symbols) -> Self {
        let n = symbols.fns.len();
        let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); n];
        let mut sites: Vec<Vec<CallSite>> = vec![Vec::new(); n];
        for (id, fr) in symbols.fns.iter().enumerate() {
            let file = &files[fr.file];
            let item = &file.fns[fr.item];
            let Some((bs, be)) = item.body else { continue };
            let fn_sites = extract_calls(file, bs, be);
            let mut out: Vec<FnId> = Vec::new();
            for s in &fn_sites {
                match s.kind {
                    CallKind::Free => out.extend_from_slice(symbols.resolve_free(&s.name)),
                    CallKind::Method => out.extend_from_slice(symbols.resolve_method(&s.name)),
                    CallKind::Qualified => out.extend(symbols.resolve_qualified(
                        s.owner.as_deref().unwrap_or(""),
                        &s.name,
                        item.owner.as_deref(),
                    )),
                }
            }
            out.sort_unstable();
            out.dedup();
            // A resolved self-loop adds nothing to reachability.
            out.retain(|&t| t != id);
            edges[id] = out;
            sites[id] = fn_sites;
        }
        CallGraph { edges, sites }
    }

    /// Breadth-first reachability from `entries`. Returns, per function,
    /// `Some((depth, parent))` when reachable — `parent` is `None` for
    /// the entries themselves.
    pub fn reach(&self, entries: &[FnId]) -> Vec<Option<(u32, Option<FnId>)>> {
        let mut state: Vec<Option<(u32, Option<FnId>)>> = vec![None; self.edges.len()];
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &e in entries {
            if e < state.len() && state[e].is_none() {
                state[e] = Some((0, None));
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            let (du, _) = state[u].unwrap_or((0, None));
            for &v in &self.edges[u] {
                if state[v].is_none() {
                    state[v] = Some((du + 1, Some(u)));
                    queue.push_back(v);
                }
            }
        }
        state
    }

    /// Reverse reachability: every function from which some function in
    /// `targets` is reachable (including the targets themselves).
    pub fn reaches_into(&self, targets: &[FnId]) -> Vec<bool> {
        let n = self.edges.len();
        let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &v in outs {
                rev[v].push(u);
            }
        }
        let mut seen = vec![false; n];
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &t in targets {
            if t < n && !seen[t] {
                seen[t] = true;
                queue.push_back(t);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &p in &rev[u] {
                if !seen[p] {
                    seen[p] = true;
                    queue.push_back(p);
                }
            }
        }
        seen
    }
}

/// Extracts call sites from the token range `[bs, be)` of one body,
/// applying the file's `use`-alias substitutions.
pub fn extract_calls(file: &ParsedFile, bs: usize, be: usize) -> Vec<CallSite> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = bs;
    while i < be.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (KEYWORDS.contains(&t.text.as_str()) && !t.raw) {
            i += 1;
            continue;
        }
        // Macro invocation `name!(..)` — not a call edge (panic-relevant
        // macros are handled as sites by the analyses).
        if toks.get(i + 1).is_some_and(|n| n.text == "!") {
            i += 2;
            continue;
        }
        // Call shape: `name (` or `name ::< … > (` (turbofish).
        let mut after = i + 1;
        if seq2(file, after, ":", ":") && toks.get(after + 2).is_some_and(|n| n.text == "<") {
            // Turbofish: skip `::< … >`.
            let mut depth = 1i32;
            let mut k = after + 3;
            while k < toks.len() && depth > 0 {
                match toks[k].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            after = k;
        }
        let is_call = toks.get(after).is_some_and(|n| n.text == "(");
        if !is_call {
            i += 1;
            continue;
        }
        // Classify by what precedes the name.
        let prev_is = |k: usize, txt: &str| i >= k && toks[i - k].text == txt;
        if prev_is(1, ".") {
            out.push(CallSite {
                name: t.text.clone(),
                owner: None,
                kind: CallKind::Method,
                line: t.line,
                col: t.col,
            });
        } else if prev_is(1, ":") && prev_is(2, ":") {
            // Qualified: the segment before the `::` is the receiver.
            // (Generic arguments `<…>::name` collapse to the path ident
            // before the angle group when present.)
            let owner = qualified_owner(file, i);
            out.push(CallSite {
                name: alias_target(file, &t.text),
                owner,
                kind: CallKind::Qualified,
                line: t.line,
                col: t.col,
            });
        } else {
            out.push(CallSite {
                name: alias_target(file, &t.text),
                owner: None,
                kind: CallKind::Free,
                line: t.line,
                col: t.col,
            });
        }
        i = after + 1;
    }
    out
}

/// Maps a locally bound name through the file's `use` aliases to the
/// defining name (identity when not renamed).
fn alias_target(file: &ParsedFile, name: &str) -> String {
    file.aliases
        .iter()
        .find(|a| a.alias == name && a.target != a.alias)
        .map(|a| a.target.clone())
        .unwrap_or_else(|| name.to_string())
}

/// For a qualified call with the name token at `i` (preceded by `::`),
/// returns the receiver segment — the ident before the `::`, skipping a
/// generic-argument group (`Foo::<T>::new` → `Foo`, `<T as Tr>::f` → `T`).
fn qualified_owner(file: &ParsedFile, i: usize) -> Option<String> {
    let toks = &file.tokens;
    if i < 3 {
        return None;
    }
    let mut k = i - 2; // before the two `:`
    if toks[k].text == ">" {
        // Skip back over `<…>`.
        let mut depth = 1i32;
        while k > 0 && depth > 0 {
            k -= 1;
            match toks[k].text.as_str() {
                ">" => depth += 1,
                "<" => depth -= 1,
                _ => {}
            }
        }
        // `Foo::<T>` — the ident before the `<` (itself possibly after
        // another `::`); `<T as Tr>::f` — the first ident inside.
        if k > 0 && toks[k - 1].kind == TokKind::Ident {
            return Some(toks[k - 1].text.clone());
        }
        let inner = toks.get(k + 1)?;
        if inner.kind == TokKind::Ident {
            return Some(inner.text.clone());
        }
        return None;
    }
    (toks[k].kind == TokKind::Ident).then(|| alias_target(file, &toks[k].text))
}

fn seq2(file: &ParsedFile, i: usize, a: &str, b: &str) -> bool {
    file.tokens.get(i).is_some_and(|t| t.text == a)
        && file.tokens.get(i + 1).is_some_and(|t| t.text == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(files: &[(&str, &str)]) -> (Vec<ParsedFile>, Symbols, CallGraph) {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        let sym = Symbols::build(&parsed);
        let g = CallGraph::build(&parsed, &sym);
        (parsed, sym, g)
    }

    fn id_of(files: &[ParsedFile], sym: &Symbols, name: &str) -> FnId {
        sym.fns
            .iter()
            .position(|fr| files[fr.file].fns[fr.item].name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn free_call_edge_across_files() {
        let (files, sym, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); }\n"),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let e = id_of(&files, &sym, "entry");
        let h = id_of(&files, &sym, "helper");
        assert_eq!(g.edges[e], [h]);
    }

    #[test]
    fn method_call_resolves_to_all_same_named_methods() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nimpl A { fn poll(&self) {} }\nimpl B { fn poll(&self) {} }\n\
             pub fn entry(a: &A) { a.poll(); }\n",
        )]);
        let e = id_of(&files, &sym, "entry");
        assert_eq!(g.edges[e].len(), 2, "CHA without hierarchy: both poll methods");
    }

    #[test]
    fn alias_call_resolves_to_original() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "use crate::inner::make as build;\nmod inner { pub fn make() {} }\n\
             pub fn entry() { build(); }\n",
        )]);
        let e = id_of(&files, &sym, "entry");
        let m = id_of(&files, &sym, "make");
        assert_eq!(g.edges[e], [m]);
    }

    #[test]
    fn turbofish_call_is_still_a_call() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn cast<T>(x: T) -> T { x }\npub fn entry() { cast::<u32>(1); }\n",
        )]);
        let e = id_of(&files, &sym, "entry");
        let c = id_of(&files, &sym, "cast");
        assert_eq!(g.edges[e], [c]);
    }

    #[test]
    fn generic_bound_call_over_approximates() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "trait Sampler { fn sample(); }\nstruct Z;\nimpl Sampler for Z { fn sample() {} }\n\
             pub fn entry<T: Sampler>() { T::sample(); }\n",
        )]);
        let e = id_of(&files, &sym, "entry");
        assert!(!g.edges[e].is_empty(), "T::sample must reach the impl");
    }

    #[test]
    fn reach_reports_depth_and_parent() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n",
        )]);
        let (a, b, c, island) = (
            id_of(&files, &sym, "a"),
            id_of(&files, &sym, "b"),
            id_of(&files, &sym, "c"),
            id_of(&files, &sym, "island"),
        );
        let r = g.reach(&[a]);
        assert_eq!(r[a], Some((0, None)));
        assert_eq!(r[b], Some((1, Some(a))));
        assert_eq!(r[c], Some((2, Some(b))));
        assert!(r[island].is_none());
    }

    #[test]
    fn reverse_reachability_finds_public_entry() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn api() { mid(); }\nfn mid() { low(); }\nfn low() {}\nfn other() {}\n",
        )]);
        let api = id_of(&files, &sym, "api");
        let low = id_of(&files, &sym, "low");
        let other = id_of(&files, &sym, "other");
        let seen = g.reaches_into(&[low]);
        assert!(seen[api]);
        assert!(!seen[other]);
    }

    #[test]
    fn macro_invocations_are_not_edges() {
        let (files, sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn assert_eq() {}\npub fn entry() { assert_eq!(1, 1); }\n",
        )]);
        let e = id_of(&files, &sym, "entry");
        assert!(g.edges[e].is_empty());
    }
}
