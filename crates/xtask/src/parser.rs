//! Item-level Rust front-end on top of [`crate::lexer`].
//!
//! The whole-program analyses (`cargo xtask analyze`) need to know *which
//! function* a token belongs to and *which functions it may call* — a
//! strictly richer view than the per-file token lints, but still far short
//! of a full AST. This parser extracts exactly the items the call-graph
//! construction needs from the token stream:
//!
//! * `fn` items — name, owner type (for `impl`/`trait` methods), `pub`
//!   visibility, source span, and the token range of the body;
//! * `impl` / `trait` blocks — to attribute methods to an owner type so
//!   `Receiver::method(..)` and `.method(..)` calls can be resolved;
//! * `use` declarations — leaf-name aliases (`use a::b as c`) so calls
//!   through re-exports and renames still resolve;
//! * `struct`/`enum`/`union` names and `type` aliases — so qualified
//!   calls through a type alias resolve to the aliased type's methods.
//!
//! The parser is deliberately *forgiving and conservative*: anything it
//! does not recognise is skipped token-by-token, so exotic syntax
//! degrades to missing detail rather than a crash, and the resolution
//! layer over-approximates whenever the parse is ambiguous. Nested items
//! (a `fn` inside a `fn`) are parsed as their own functions; their call
//! sites are *also* attributed to the enclosing function, which
//! over-approximates reachability but never loses an edge.

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::lints::cfg_test_spans;

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Owner type for methods: the `impl` self type (last path segment)
    /// or the `trait` name for default methods. `None` for free
    /// functions.
    pub owner: Option<String>,
    /// Whether the item carries a `pub` modifier (any restriction form:
    /// `pub`, `pub(crate)`, `pub(super)`, …).
    pub is_pub: bool,
    /// 1-based line of the function name token.
    pub line: u32,
    /// 1-based column of the function name token.
    pub col: u32,
    /// Token index range `[start, end)` of the body, *excluding* the
    /// outer braces. `None` for bodyless declarations (trait method
    /// signatures, extern fns).
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]` span.
    pub in_test: bool,
}

/// One `use` leaf: the name it binds locally and the name it refers to.
///
/// `use a::b::c;` yields `(c, c)`; `use a::b as x;` yields `(x, b)`;
/// groups (`use a::{b, c as d}`) yield one entry per leaf. Glob imports
/// produce nothing (bare-name resolution is already workspace-wide, so a
/// glob cannot make it *less* complete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The locally bound name.
    pub alias: String,
    /// The original (defining) name the alias refers to.
    pub target: String,
}

/// Everything the analyses need from one source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The full token stream (body ranges index into this).
    pub tokens: Vec<Token>,
    /// All comments, for justification-directive matching.
    pub comments: Vec<Comment>,
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// `use` leaf aliases declared anywhere in the file.
    pub aliases: Vec<UseAlias>,
    /// Type names defined in this file (`struct`/`enum`/`union`/`trait`).
    pub types: Vec<String>,
    /// `type A = B;` aliases (alias name, last segment of target path).
    pub type_aliases: Vec<(String, String)>,
    /// `#[cfg(test)]` item spans as inclusive line ranges.
    pub test_spans: Vec<(u32, u32)>,
}

impl ParsedFile {
    /// Whether `line` falls inside a `#[cfg(test)]` item span.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Keywords that can never be call names or item names in call position.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// Whether token `t` is the (non-raw) keyword `kw`.
fn is_kw(t: &Token, kw: &str) -> bool {
    t.kind == TokKind::Ident && !t.raw && t.text == kw
}

/// Parses one source file into items.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let test_spans = cfg_test_spans(&lexed.tokens);
    let mut out = ParsedFile {
        path: path.to_string(),
        tokens: lexed.tokens,
        comments: lexed.comments,
        fns: Vec::new(),
        aliases: Vec::new(),
        types: Vec::new(),
        type_aliases: Vec::new(),
        test_spans,
    };
    let end = out.tokens.len();
    parse_items(&mut out, 0, end, None);
    out
}

/// Scans tokens in `[i, end)` for items, attributing methods to `owner`.
/// Recurses into `mod`/`impl`/`trait` blocks and `fn` bodies.
fn parse_items(f: &mut ParsedFile, mut i: usize, end: usize, owner: Option<&str>) {
    while i < end {
        // Skip attributes `#[...]` / `#![...]` wholesale.
        if f.tokens[i].text == "#" {
            let mut j = i + 1;
            if f.tokens.get(j).is_some_and(|t| t.text == "!") {
                j += 1;
            }
            if f.tokens.get(j).is_some_and(|t| t.text == "[") {
                i = match_brackets(&f.tokens, j, "[", "]").min(end);
                continue;
            }
            i += 1;
            continue;
        }
        // Visibility + leading modifiers before an item keyword.
        let _item_start = i;
        let mut is_pub = false;
        while i < end {
            let t = &f.tokens[i];
            if is_kw(t, "pub") {
                is_pub = true;
                i += 1;
                if f.tokens.get(i).is_some_and(|t| t.text == "(") {
                    i = match_brackets(&f.tokens, i, "(", ")").min(end);
                }
            } else if is_kw(t, "const") || is_kw(t, "unsafe") || is_kw(t, "async") {
                // `const fn` / `unsafe fn` / `async fn` modifiers — but
                // `const NAME: T = ..;` is an item of its own: only treat
                // `const` as a modifier when `fn` follows soon.
                if is_kw(t, "const")
                    && !f.tokens.get(i + 1).is_some_and(|n| is_kw(n, "fn") || is_kw(n, "unsafe"))
                {
                    break;
                }
                i += 1;
            } else if is_kw(t, "extern") {
                i += 1;
                if f.tokens.get(i).is_some_and(|t| t.kind == TokKind::Str) {
                    i += 1;
                }
            } else {
                break;
            }
        }
        if i >= end {
            break;
        }
        let t = f.tokens[i].clone();
        if is_kw(&t, "fn") && f.tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let name_tok = f.tokens[i + 1].clone();
            let mut j = i + 2;
            // Generics on the fn itself.
            if f.tokens.get(j).is_some_and(|t| t.text == "<") {
                j = match_angles(&f.tokens, j).min(end);
            }
            // Parameter list.
            if f.tokens.get(j).is_some_and(|t| t.text == "(") {
                j = match_brackets(&f.tokens, j, "(", ")").min(end);
            }
            // Return type / where clause: scan to the body `{` or `;`.
            while j < end && f.tokens[j].text != "{" && f.tokens[j].text != ";" {
                // Skip bracketed groups so a `{` inside a const-generic
                // default or array type cannot be mistaken for the body.
                match f.tokens[j].text.as_str() {
                    "(" => j = match_brackets(&f.tokens, j, "(", ")").min(end),
                    "[" => j = match_brackets(&f.tokens, j, "[", "]").min(end),
                    _ => j += 1,
                }
            }
            let body = if j < end && f.tokens[j].text == "{" {
                let close = match_brackets(&f.tokens, j, "{", "}").min(end);
                Some((j + 1, close.saturating_sub(1)))
            } else {
                None
            };
            f.fns.push(FnItem {
                name: name_tok.text.clone(),
                owner: owner.map(str::to_string),
                is_pub,
                line: name_tok.line,
                col: name_tok.col,
                body,
                in_test: f.in_test(name_tok.line),
            });
            if let Some((bs, be)) = body {
                // Nested items (fn-in-fn, impl-in-fn) are still items.
                parse_items(f, bs, be, owner);
                i = be + 1;
            } else {
                i = j + 1;
            }
        } else if is_kw(&t, "mod") {
            // `mod name { … }` — recurse; `mod name;` — skip.
            let mut j = i + 1;
            while j < end && f.tokens[j].text != "{" && f.tokens[j].text != ";" {
                j += 1;
            }
            if j < end && f.tokens[j].text == "{" {
                let close = match_brackets(&f.tokens, j, "{", "}").min(end);
                parse_items(f, j + 1, close.saturating_sub(1), owner);
                i = close;
            } else {
                i = j + 1;
            }
        } else if is_kw(&t, "impl") || is_kw(&t, "trait") {
            let is_trait = is_kw(&t, "trait");
            let mut j = i + 1;
            if f.tokens.get(j).is_some_and(|t| t.text == "<") {
                j = match_angles(&f.tokens, j).min(end);
            }
            // Collect the header up to `{` (or `;` for `trait A = B;`).
            let header_start = j;
            while j < end && f.tokens[j].text != "{" && f.tokens[j].text != ";" {
                match f.tokens[j].text.as_str() {
                    "<" => j = match_angles(&f.tokens, j).min(end),
                    "(" => j = match_brackets(&f.tokens, j, "(", ")").min(end),
                    _ => j += 1,
                }
            }
            let name = if is_trait {
                let n = f.tokens.get(header_start).map(|t| t.text.clone());
                if let Some(ref n) = n {
                    f.types.push(n.clone());
                }
                n
            } else {
                impl_self_type(&f.tokens[header_start..j])
            };
            if j < end && f.tokens[j].text == "{" {
                let close = match_brackets(&f.tokens, j, "{", "}").min(end);
                parse_items(f, j + 1, close.saturating_sub(1), name.as_deref());
                i = close;
            } else {
                i = j + 1;
            }
        } else if is_kw(&t, "struct") || is_kw(&t, "enum") || is_kw(&t, "union") {
            if let Some(n) = f.tokens.get(i + 1) {
                if n.kind == TokKind::Ident {
                    let n = n.text.clone();
                    f.types.push(n);
                }
            }
            // Skip to `;` (unit/tuple struct) or past the brace block.
            let mut j = i + 1;
            while j < end && f.tokens[j].text != "{" && f.tokens[j].text != ";" {
                match f.tokens[j].text.as_str() {
                    "<" => j = match_angles(&f.tokens, j).min(end),
                    "(" => j = match_brackets(&f.tokens, j, "(", ")").min(end),
                    _ => j += 1,
                }
            }
            i = if j < end && f.tokens[j].text == "{" {
                match_brackets(&f.tokens, j, "{", "}").min(end)
            } else {
                j + 1
            };
        } else if is_kw(&t, "type") {
            // `type A = path::B<...>;` — record (A, B).
            let alias = f.tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident).cloned();
            let mut j = i + 2;
            while j < end && f.tokens[j].text != "=" && f.tokens[j].text != ";" {
                j += 1;
            }
            if let (Some(a), Some(eq)) = (alias, f.tokens.get(j)) {
                if eq.text == "=" {
                    // Target name: last ident before `<`, `;`, or EOL.
                    let mut k = j + 1;
                    let mut target = None;
                    while k < end && f.tokens[k].text != ";" && f.tokens[k].text != "<" {
                        if f.tokens[k].kind == TokKind::Ident {
                            target = Some(f.tokens[k].text.clone());
                        }
                        k += 1;
                    }
                    if let Some(tgt) = target {
                        f.type_aliases.push((a.text, tgt));
                    }
                }
            }
            while i < end && f.tokens[i].text != ";" {
                i += 1;
            }
            i += 1;
        } else if is_kw(&t, "use") {
            let stmt_end = {
                let mut j = i + 1;
                while j < end && f.tokens[j].text != ";" {
                    j += 1;
                }
                j
            };
            parse_use_leaves(&f.tokens[i + 1..stmt_end], &mut f.aliases);
            i = stmt_end + 1;
        } else if t.text == "{" {
            // Stray block (e.g. inside a body we recursed into): recurse
            // so nested items are still found.
            let close = match_brackets(&f.tokens, i, "{", "}").min(end);
            parse_items(f, i + 1, close.saturating_sub(1), owner);
            i = close;
        } else if is_kw(&t, "macro_rules") {
            // `macro_rules! name { … }` — skip the whole definition.
            let mut j = i + 1;
            while j < end && f.tokens[j].text != "{" {
                j += 1;
            }
            i = if j < end { match_brackets(&f.tokens, j, "{", "}").min(end) } else { end };
        } else {
            i += 1;
        }
    }
}

/// Extracts the self-type name from an `impl` header (tokens between
/// `impl<…>` and `{`): the last path segment of the type after `for` when
/// present, otherwise of the first type. `impl Display for V2Graph` →
/// `V2Graph`; `impl<T> Foo<T>` → `Foo`; `impl Tr for &mut S` → `S`.
fn impl_self_type(header: &[Token]) -> Option<String> {
    // Find a top-level `for` (not inside angle brackets).
    let mut depth = 0i32;
    let mut for_idx = None;
    for (k, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "for" if depth <= 0 && t.kind == TokKind::Ident && !t.raw => {
                for_idx = Some(k);
                break;
            }
            _ => {}
        }
    }
    let ty = match for_idx {
        Some(k) => &header[k + 1..],
        None => header,
    };
    // Last ident of the leading path, stopping at generics.
    let mut name = None;
    for t in ty {
        match t.text.as_str() {
            "<" | "where" => break,
            _ if t.kind == TokKind::Ident
                && !KEYWORDS.contains(&t.text.as_str())
                && t.text != "dyn" =>
            {
                name = Some(t.text.clone());
            }
            _ => {}
        }
    }
    name
}

/// Extracts leaf aliases from the tokens of one `use` declaration
/// (everything between `use` and `;`). Handles nested groups and `as`.
fn parse_use_leaves(toks: &[Token], out: &mut Vec<UseAlias>) {
    // Walk the token list; at each `,`, `}`, or end, the preceding
    // `ident [as ident]` pair (if any) is a leaf.
    let mut last_ident: Option<String> = None;
    let mut alias: Option<String> = None;
    let mut pending_as = false;
    let mut flush = |last_ident: &mut Option<String>, alias: &mut Option<String>| {
        if let Some(target) = last_ident.take() {
            let bound = alias.take().unwrap_or_else(|| target.clone());
            // `use a::b::c;` binds `c` to itself — record only renames
            // and self-binds alike; resolution treats identity aliases
            // as no-ops but renames matter.
            out.push(UseAlias { alias: bound, target });
        }
        *alias = None;
    };
    for t in toks {
        match t.text.as_str() {
            "," | "}" => flush(&mut last_ident, &mut alias),
            "{" | ":" => {}
            "as" if t.kind == TokKind::Ident && !t.raw => pending_as = true,
            "*" => {
                last_ident = None;
                alias = None;
            }
            _ if t.kind == TokKind::Ident => {
                if pending_as {
                    alias = Some(t.text.clone());
                    pending_as = false;
                } else {
                    last_ident = Some(t.text.clone());
                    alias = None;
                }
            }
            _ => {}
        }
    }
    flush(&mut last_ident, &mut alias);
}

/// Given `toks[open_idx] == open`, returns the index one past the
/// matching `close` (or `toks.len()` if unbalanced).
pub fn match_brackets(toks: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut k = open_idx;
    while k < toks.len() {
        if toks[k].text == open {
            depth += 1;
        } else if toks[k].text == close {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// Matches `<`…`>` in generic position, ignoring the `>` of a `->` arrow
/// (the lexer emits `-` and `>` as adjacent single-char puncts).
fn match_angles(toks: &[Token], open_idx: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open_idx;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            ">" => {
                let is_arrow = k > 0
                    && toks[k - 1].text == "-"
                    && toks[k - 1].line == toks[k].line
                    && toks[k].col == toks[k - 1].col + 1;
                if !is_arrow {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_file("crates/x/src/a.rs", src).fns
    }

    #[test]
    fn free_fn_and_visibility() {
        let f = fns("pub fn alpha() {}\nfn beta(x: usize) -> usize { x }\n");
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].name.as_str(), f[0].is_pub, f[0].owner.clone()), ("alpha", true, None));
        assert_eq!((f[1].name.as_str(), f[1].is_pub), ("beta", false));
        assert_eq!((f[0].line, f[0].col), (1, 8));
    }

    #[test]
    fn impl_methods_get_owner() {
        let src = "struct S;\nimpl S {\n  pub fn new() -> Self { S }\n  fn go(&self) {}\n}\n";
        let p = parse_file("crates/x/src/a.rs", src);
        assert_eq!(p.types, ["S"]);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns.iter().all(|f| f.owner.as_deref() == Some("S")));
        assert!(p.fns[0].is_pub && !p.fns[1].is_pub);
    }

    #[test]
    fn trait_impl_owner_is_self_type() {
        let src = "impl<T: Clone> Visit<T> for Walker<T> {\n  fn visit(&self) {}\n}\n";
        let p = parse_file("crates/x/src/a.rs", src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Walker"));
    }

    #[test]
    fn trait_default_methods_owned_by_trait() {
        let src = "pub trait Sampler {\n  fn sample(&self);\n  fn twice(&self) { self.sample(); self.sample(); }\n}\n";
        let p = parse_file("crates/x/src/a.rs", src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Sampler"));
        assert!(p.fns[0].body.is_none(), "signature-only method has no body");
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn generic_fn_with_arrow_in_bounds() {
        let src = "pub fn apply<F: Fn(usize) -> f64>(f: F) -> f64 { f(1) }\n";
        let f = fns(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "apply");
        assert!(f[0].body.is_some());
    }

    #[test]
    fn use_aliases_and_groups() {
        let src = "use crate::inner::make as build;\nuse a::{b, c as d};\npub use e::f;\n";
        let p = parse_file("crates/x/src/a.rs", src);
        assert!(p.aliases.contains(&UseAlias { alias: "build".into(), target: "make".into() }));
        assert!(p.aliases.contains(&UseAlias { alias: "d".into(), target: "c".into() }));
        assert!(p.aliases.contains(&UseAlias { alias: "f".into(), target: "f".into() }));
    }

    #[test]
    fn type_alias_recorded() {
        let src = "pub type Table = crate::sharded::ShardedEdgeTable<u64>;\n";
        let p = parse_file("crates/x/src/a.rs", src);
        assert_eq!(p.type_aliases, [("Table".into(), "ShardedEdgeTable".into())]);
    }

    #[test]
    fn raw_ident_fn_is_not_an_item_keyword() {
        // `r#fn` as a variable: must not be parsed as the start of a fn
        // item (that would swallow the rest of the file).
        let src = "fn real() { let r#fn = 1; let _ = r#fn + 1; }\nfn after() {}\n";
        let f = fns(src);
        assert_eq!(
            f.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            ["real", "after"],
            "raw identifiers must not open items"
        );
    }

    #[test]
    fn nested_fn_is_its_own_item() {
        let src = "fn outer() { fn inner() {} inner(); }\n";
        let f = fns(src);
        assert_eq!(f.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(), ["outer", "inner"]);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n";
        let f = fns(src);
        assert!(!f[0].in_test);
        assert!(f[1].in_test);
    }

    #[test]
    fn mod_blocks_are_recursed() {
        let src = "mod inner {\n  pub fn deep() {}\n}\n";
        let f = fns(src);
        assert_eq!(f[0].name, "deep");
        assert!(f[0].is_pub);
    }
}
