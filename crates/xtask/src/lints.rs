//! The six workspace lints (L1–L6) and the suppression machinery.
//!
//! Every lint works on the token stream from [`crate::lexer`], so banned
//! patterns appearing inside string literals or comments (including this
//! file's own documentation) never fire. The catalog:
//!
//! * **L1** — every `unsafe` token must have a `// SAFETY:` comment within
//!   six lines above it (or trailing on the same line), and every crate
//!   root must carry `#![forbid(unsafe_code)]` or
//!   `#![deny(unsafe_op_in_unsafe_fn)]`. Crates listed in
//!   [`config::L1_UNSAFE_ISOLATED`] additionally confine `unsafe` to one
//!   designated module: elsewhere in the crate it is a violation even
//!   with a SAFETY comment.
//! * **L2** — no `HashMap`/`HashSet` in deterministic-path modules
//!   (outside `#[cfg(test)]`): hash iteration order varies per process,
//!   which breaks bitwise reproducibility of sparsifier/embedding output.
//! * **L3** — no floating-point reductions (`sum`, `product`, `reduce`,
//!   `fold`) or captured-accumulator `+=` inside rayon parallel chains,
//!   outside the fixed-block helpers in `lightne_utils::parallel`:
//!   unordered float addition makes results depend on thread count.
//! * **L4** — every `Ordering::Relaxed` in the lock-free hash table must
//!   carry an `// ordering:` justification comment arguing why relaxed
//!   ordering is sufficient at that site.
//! * **L5** — no ambient nondeterminism: `SystemTime::now` and
//!   `rand::thread_rng`/`from_entropy` are banned workspace-wide;
//!   `Instant::now` is banned on the deterministic path outside the
//!   timing layer.
//! * **L6** — every `std::arch` SIMD intrinsic call site (`_mm…(`) must
//!   sit inside a `#[target_feature]` function, in a crate's designated
//!   unsafe module ([`config::L1_UNSAFE_ISOLATED`]), with a `// SAFETY:`
//!   feature-guard comment near the call or the enclosing function:
//!   an intrinsic outside a feature-gated function is instant UB on older
//!   CPUs, and scattering intrinsics outside the audited modules defeats
//!   the L1 isolation posture.
//!
//! A violation can be suppressed inline with
//! `// xtask:allow(Lk): reason` on the same or preceding line; an allow
//! without a reason is itself a violation, so the gate passes only with
//! zero *undocumented* suppressions.

use crate::config;
use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Comment, TokKind, Token};

/// Rayon method names that start a parallel chain.
const PAR_ENTRYPOINTS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_chunks_exact",
    "par_windows",
    "par_bridge",
    "par_drain",
];

/// Chain terminals that perform an order-sensitive reduction.
const REDUCERS: &[&str] = &["sum", "product", "reduce", "fold", "reduce_with", "fold_with"];

/// Identifiers counted as floating-point evidence inside a statement.
const FLOAT_IDENT_EVIDENCE: &[&str] = &["f32", "f64", "powf", "sqrt", "exp", "ln"];

/// An inline `xtask:allow` suppression parsed from a comment.
#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) lint: String,
    pub(crate) line: u32,
    pub(crate) end_line: u32,
    pub(crate) has_reason: bool,
}

/// Per-file lint context: tokens, comments, `#[cfg(test)]` spans, allows.
struct FileCtx<'a> {
    path: &'a str,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    test_spans: Vec<(u32, u32)>,
    allows: Vec<Allow>,
}

impl<'a> FileCtx<'a> {
    fn new(path: &'a str, src: &str) -> Self {
        let lexed = lex(src);
        let test_spans = cfg_test_spans(&lexed.tokens);
        let allows = parse_allows(&lexed.comments);
        Self { path, tokens: lexed.tokens, comments: lexed.comments, test_spans, allows }
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether token `i`..`i+texts.len()` matches the given texts exactly.
    fn seq(&self, i: usize, texts: &[&str]) -> bool {
        texts
            .iter()
            .enumerate()
            .all(|(k, want)| self.tokens.get(i + k).is_some_and(|t| t.text == *want))
    }

    fn diag(&self, lint: &'static str, tok: &Token, message: String) -> Diagnostic {
        Diagnostic { lint, file: self.path.to_string(), line: tok.line, col: tok.col, message }
    }

    /// Whether a comment containing `marker` ends within `window` lines
    /// above `line` (or sits on the same line).
    fn has_comment_near(&self, marker: &str, line: u32, window: u32) -> bool {
        self.comments.iter().any(|c| {
            !c.is_doc()
                && c.text.contains(marker)
                && ((c.end_line <= line && line - c.end_line <= window) || c.line == line)
        })
    }
}

/// Lints one source file. `path` is the workspace-relative path with `/`
/// separators; it selects which lints apply (deterministic-path modules,
/// whitelists). Returns unsuppressed diagnostics in source order.
pub fn check_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(path, src);
    let mut diags = Vec::new();
    lint_l1(&ctx, &mut diags);
    lint_l2(&ctx, &mut diags);
    lint_l3(&ctx, &mut diags);
    lint_l4(&ctx, &mut diags);
    lint_l5(&ctx, &mut diags);
    lint_l6(&ctx, &mut diags);
    let mut out = apply_allows(&ctx, diags);
    out.sort_by_key(|d| (d.line, d.col, d.lint));
    out
}

/// Extracts `#[cfg(test)]` item spans as inclusive line ranges. The span
/// starts at the attribute and runs to the matching close brace of the
/// item that follows (or its terminating `;`).
pub(crate) fn cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
            && tokens.get(i + 2).is_some_and(|t| t.text == "cfg")
            && tokens.get(i + 3).is_some_and(|t| t.text == "(")
        {
            // Scan the cfg predicate for a `test` atom (handles
            // `cfg(test)` and `cfg(all(test, …))`).
            let mut j = i + 4;
            let mut depth = 1u32;
            let mut is_test = false;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" => is_test = true,
                    _ => {}
                }
                j += 1;
            }
            // j is now past `)`; expect `]`.
            if is_test && tokens.get(j).is_some_and(|t| t.text == "]") {
                let start_line = tokens[i].line;
                // Skip any further attributes on the same item.
                let mut k = j + 1;
                while tokens.get(k).is_some_and(|t| t.text == "#")
                    && tokens.get(k + 1).is_some_and(|t| t.text == "[")
                {
                    let mut bd = 0i32;
                    k += 1;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "[" => bd += 1,
                            "]" => {
                                bd -= 1;
                                if bd == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Find the item body: first `{` (match braces) or `;`.
                let mut end_line = start_line;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        ";" => {
                            end_line = tokens[k].line;
                            break;
                        }
                        "{" => {
                            let mut bd = 1i32;
                            k += 1;
                            while k < tokens.len() && bd > 0 {
                                match tokens[k].text.as_str() {
                                    "{" => bd += 1,
                                    "}" => bd -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            end_line = tokens[k.saturating_sub(1)].line;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                spans.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Parses inline allow directives of the form `xtask:allow(Lk): reason`
/// (the reason part may be absent, which is reported as a violation).
pub(crate) fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        if c.is_doc() {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("xtask:allow(") {
            rest = &rest[pos + "xtask:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let lint = rest[..close].trim().to_string();
            rest = &rest[close + 1..];
            let has_reason =
                rest.trim_start().strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
            out.push(Allow { lint, line: c.line, end_line: c.end_line, has_reason });
        }
    }
    out
}

/// Filters `diags` through the file's inline allows. A reasoned allow on
/// the same line, or ending up to three lines above (the reason may wrap
/// onto continuation comment lines), suppresses a matching diagnostic; an
/// allow without a reason adds a diagnostic of its own.
fn apply_allows(ctx: &FileCtx, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !ctx.allows.iter().any(|a| {
                a.has_reason
                    && a.lint == d.lint
                    && (a.line == d.line || (a.end_line < d.line && d.line - a.end_line <= 3))
            })
        })
        .collect();
    for a in &ctx.allows {
        if !a.has_reason {
            out.push(Diagnostic {
                lint: lint_code(&a.lint),
                file: ctx.path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "xtask:allow({}) without a justification; write `xtask:allow({}): <reason>`",
                    a.lint, a.lint
                ),
            });
        }
    }
    out
}

/// Stale-suppression audit: reports every *reasoned* `xtask:allow` waiver
/// that no longer suppresses a real diagnostic, and every reasoned
/// `xtask:panic-ok(..)` with no panic-adjacent site in its window. Dead
/// waivers are how suppressions rot: the code they excused gets deleted
/// or rewritten, the comment stays, and a later real violation lands in
/// its shadow. Run via `cargo xtask check --stale-allows` (wired into
/// the CI static-analysis job).
pub fn stale_suppressions(path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(path, src);
    let mut raw = Vec::new();
    lint_l1(&ctx, &mut raw);
    lint_l2(&ctx, &mut raw);
    lint_l3(&ctx, &mut raw);
    lint_l4(&ctx, &mut raw);
    lint_l5(&ctx, &mut raw);
    lint_l6(&ctx, &mut raw);
    let mut out = Vec::new();
    for a in ctx.allows.iter().filter(|a| a.has_reason) {
        let suppresses = raw.iter().any(|d| {
            a.lint == d.lint
                && (a.line == d.line || (a.end_line < d.line && d.line - a.end_line <= 3))
        });
        if !suppresses {
            out.push(Diagnostic {
                lint: lint_code(&a.lint),
                file: ctx.path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "stale `xtask:allow({})`: no {} diagnostic within its window — remove \
                     the waiver or the code it excused has moved",
                    a.lint, a.lint
                ),
            });
        }
    }
    // panic-ok staleness: the directive must sit on or within 3 lines
    // above some panic-adjacent token (unwrap/expect/panic-family macro).
    for c in &ctx.comments {
        if c.is_doc() || !c.text.contains("xtask:panic-ok(") {
            continue;
        }
        let covered = ctx.tokens.iter().any(|t| {
            t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "unwrap" | "expect" | "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && (t.line == c.line || (c.end_line < t.line && t.line - c.end_line <= 3))
        });
        if !covered {
            out.push(Diagnostic {
                lint: "L1",
                file: ctx.path.to_string(),
                line: c.line,
                col: 1,
                message: "stale `xtask:panic-ok(..)`: no unwrap/expect/panic site within its \
                          window — remove the waiver"
                    .into(),
            });
        }
    }
    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// Maps a lint name from an allow back to a static code (unknown names
/// get reported under L1 so they are never silently dropped).
fn lint_code(name: &str) -> &'static str {
    match name {
        "L1" => "L1",
        "L2" => "L2",
        "L3" => "L3",
        "L4" => "L4",
        "L5" => "L5",
        "L6" => "L6",
        _ => "L1",
    }
}

/// L1: `unsafe` requires a nearby `// SAFETY:` comment; crate roots must
/// declare an unsafe posture attribute.
fn lint_l1(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    let isolated_to = config::L1_UNSAFE_ISOLATED
        .iter()
        .find(|(prefix, module)| ctx.path.starts_with(prefix) && ctx.path != *module)
        .map(|&(_, module)| module);
    for t in &ctx.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !ctx.has_comment_near("SAFETY:", t.line, 6) {
            diags.push(ctx.diag(
                "L1",
                t,
                "`unsafe` without a `// SAFETY:` comment within 6 lines above it".into(),
            ));
        }
        if let Some(module) = isolated_to {
            diags.push(ctx.diag(
                "L1",
                t,
                format!(
                    "`unsafe` outside the crate's designated unsafe module: this crate \
                     confines unsafe code to {module}"
                ),
            ));
        }
    }
    if ctx.path.ends_with("src/lib.rs") || ctx.path.ends_with("src/main.rs") {
        let mut found = false;
        for i in 0..ctx.tokens.len() {
            if ctx.seq(i, &["forbid", "(", "unsafe_code", ")"])
                || ctx.seq(i, &["deny", "(", "unsafe_op_in_unsafe_fn", ")"])
            {
                found = true;
                break;
            }
        }
        if !found {
            diags.push(Diagnostic {
                lint: "L1",
                file: ctx.path.to_string(),
                line: 1,
                col: 1,
                message: "crate root missing `#![forbid(unsafe_code)]` or \
                          `#![deny(unsafe_op_in_unsafe_fn)]`"
                    .into(),
            });
        }
    }
}

/// L2: hash-order iteration hazard on the deterministic path.
fn lint_l2(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if !config::path_in(ctx.path, config::DETERMINISTIC_PATH) {
        return;
    }
    for t in &ctx.tokens {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.line)
        {
            diags.push(ctx.diag(
                "L2",
                t,
                format!(
                    "`{}` in a deterministic-path module: iteration order varies per \
                     process; use a Vec, sorted keys, or BTreeMap/BTreeSet",
                    t.text
                ),
            ));
        }
    }
}

/// L3: order-sensitive float reductions inside rayon parallel chains.
fn lint_l3(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if config::path_in(ctx.path, config::L3_WHITELIST) {
        return;
    }
    let toks = &ctx.tokens;
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            ";" | "{" | "}" => {
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            _ => {}
        }
        let is_entry = toks[i].kind == TokKind::Ident
            && PAR_ENTRYPOINTS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.text == "(");
        if !is_entry {
            i += 1;
            continue;
        }
        let entry_line = toks[i].line;
        // Walk the method chain: `entry() [.method[::<…>](…)]*`.
        let mut j = match_delim(toks, i + 1, "(", ")");
        let mut reducers: Vec<usize> = Vec::new();
        loop {
            if !(toks.get(j).is_some_and(|t| t.text == ".")
                && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident))
            {
                break;
            }
            let name_idx = j + 1;
            let mut k = j + 2;
            // Turbofish `::<…>`.
            if ctx.seq(k, &[":", ":", "<"]) {
                let mut depth = 1i32;
                k += 3;
                while k < toks.len() && depth > 0 {
                    match toks[k].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            if toks.get(k).is_some_and(|t| t.text == "(") {
                k = match_delim(toks, k, "(", ")");
            }
            if REDUCERS.contains(&toks[name_idx].text.as_str()) {
                reducers.push(name_idx);
            }
            j = k;
        }
        let span = &toks[stmt_start..j.min(toks.len())];
        let has_float = span.iter().any(|t| {
            t.kind == TokKind::Float
                || (t.kind == TokKind::Ident && FLOAT_IDENT_EVIDENCE.contains(&t.text.as_str()))
        });
        if !ctx.in_test(entry_line) {
            if has_float {
                for &r in &reducers {
                    diags.push(ctx.diag(
                        "L3",
                        &toks[r],
                        format!(
                            "float `{}` inside a rayon parallel chain: summation order \
                             depends on the thread pool; use \
                             lightne_utils::parallel::parallel_reduce_sum",
                            toks[r].text
                        ),
                    ));
                }
            }
            // Captured-accumulator `+=` inside the chain span: a *bare*
            // identifier (not `*x`, `s.f`, or `a[i]`, which are
            // per-element updates) with no `let mut` declaration within
            // the span is mutable state shared across items, so the
            // accumulation order depends on the schedule regardless of
            // element type.
            for w in (stmt_start + 1)..j.min(toks.len()).saturating_sub(1) {
                let (a, b) = (&toks[w], &toks[w + 1]);
                let lhs_is_bare_ident = toks[w - 1].kind == TokKind::Ident
                    && !(w >= 2 && matches!(toks[w - 2].text.as_str(), "*" | "." | "]"));
                if a.text == "+"
                    && b.text == "="
                    && a.line == b.line
                    && b.col == a.col + 1
                    && lhs_is_bare_ident
                {
                    let lhs = &toks[w - 1].text;
                    // A `mut lhs` pair earlier in the span means the
                    // accumulator is chain-local: covers `let mut x`,
                    // tuple patterns `let (mut i, mut j)`, and `|mut a|`
                    // closure arguments.
                    let declared_locally = (stmt_start..w).any(|d| {
                        toks[d].text == "mut" && toks.get(d + 1).is_some_and(|t| &t.text == lhs)
                    });
                    if !declared_locally {
                        diags.push(ctx.diag(
                            "L3",
                            a,
                            format!(
                                "`{lhs} +=` on a captured accumulator inside a rayon \
                                 parallel chain: accumulation order depends on the thread \
                                 pool; use parallel_reduce_sum"
                            ),
                        ));
                    }
                }
            }
        }
        i = j.max(i + 1);
    }
}

/// L4: `Ordering::Relaxed` in the lock-free table needs an inline
/// `// ordering:` justification.
fn lint_l4(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if !config::path_in(ctx.path, config::L4_PATHS)
        || config::path_in(ctx.path, config::L4_WHITELIST)
    {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.seq(i, &["Ordering", ":", ":", "Relaxed"]) && !ctx.in_test(ctx.tokens[i].line) {
            let line = ctx.tokens[i].line;
            if !ctx.has_comment_near("ordering:", line, 6) {
                diags.push(
                    ctx.diag(
                        "L4",
                        &ctx.tokens[i],
                        "`Ordering::Relaxed` without an `// ordering:` justification comment \
                     arguing why relaxed is sufficient here"
                            .into(),
                    ),
                );
            }
        }
    }
}

/// L5: ambient nondeterminism sources.
fn lint_l5(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if ctx.seq(i, &["SystemTime", ":", ":", "now"]) {
            diags.push(
                ctx.diag(
                    "L5",
                    t,
                    "`SystemTime::now` is banned workspace-wide: wall-clock reads are \
                 nondeterministic; thread timestamps through the caller"
                        .into(),
                ),
            );
        }
        if t.kind == TokKind::Ident && (t.text == "thread_rng" || t.text == "from_entropy") {
            diags.push(ctx.diag(
                "L5",
                t,
                format!(
                    "`{}` is banned workspace-wide: all randomness must flow through the \
                     seeded RNG plumbing in lightne_utils::rng",
                    t.text
                ),
            ));
        }
        if config::path_in(ctx.path, config::DETERMINISTIC_PATH)
            && !config::path_in(ctx.path, config::L5_TIMER_WHITELIST)
            && ctx.seq(i, &["Instant", ":", ":", "now"])
            && !ctx.in_test(t.line)
        {
            diags.push(
                ctx.diag(
                    "L5",
                    t,
                    "`Instant::now` on the deterministic path: use lightne_utils::timer or \
                 justify with an inline allow"
                        .into(),
                ),
            );
        }
    }
}

/// L6: `std::arch` SIMD intrinsic call sites are confined to
/// `#[target_feature]` functions inside designated unsafe modules, each
/// covered by a `// SAFETY:` feature-guard comment.
fn lint_l6(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    let designated = config::L1_UNSAFE_ISOLATED.iter().any(|&(_, module)| ctx.path == module);
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        // `_mm…` (case-sensitive: skips `_MM_HINT_*` constants and
        // `__m256`-style type names) followed by a call or turbofish.
        if t.kind != TokKind::Ident || !t.text.starts_with("_mm") {
            continue;
        }
        let is_call = ctx.tokens.get(i + 1).is_some_and(|n| n.text == "(")
            || ctx.seq(i + 1, &[":", ":", "<"]);
        if !is_call || ctx.in_test(t.line) {
            continue;
        }
        if !designated {
            diags.push(ctx.diag(
                "L6",
                t,
                format!(
                    "`{}` outside a designated unsafe module: std::arch intrinsics are \
                     confined to the modules listed in config::L1_UNSAFE_ISOLATED",
                    t.text
                ),
            ));
        }
        // The enclosing fn must carry `#[target_feature(..)]`: find the
        // nearest preceding `fn`, then scan back through its attributes
        // and modifiers (stopping at the previous item's end).
        let fn_idx = (0..i).rev().find(|&k| ctx.tokens[k].text == "fn");
        let has_target_feature = fn_idx.is_some_and(|f| {
            ctx.tokens[..f]
                .iter()
                .rev()
                .take(48)
                .take_while(|a| a.text != "}" && a.text != ";" && a.text != "fn")
                .any(|a| a.text == "target_feature")
        });
        if !has_target_feature {
            diags.push(ctx.diag(
                "L6",
                t,
                format!(
                    "`{}` outside a `#[target_feature]` function: calling an intrinsic \
                     the CPU may not support is undefined behavior; gate the containing \
                     function and dispatch on runtime detection",
                    t.text
                ),
            ));
        }
        let fn_line = fn_idx.map_or(t.line, |f| ctx.tokens[f].line);
        if !ctx.has_comment_near("SAFETY:", t.line, 6)
            && !ctx.has_comment_near("SAFETY:", fn_line, 6)
        {
            diags.push(ctx.diag(
                "L6",
                t,
                format!(
                    "`{}` without a `// SAFETY:` feature-guard comment near the call or \
                     its enclosing function",
                    t.text
                ),
            ));
        }
    }
}

/// Given `toks[open_idx]` == `open`, returns the index one past the
/// matching `close` (or `toks.len()` if unbalanced).
fn match_delim(toks: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut k = open_idx;
    while k < toks.len() {
        if toks[k].text == open {
            depth += 1;
        } else if toks[k].text == close {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_span_covers_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = lex(src);
        assert_eq!(cfg_test_spans(&lexed.tokens), vec![(2, 5)]);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t {\n}\n";
        let lexed = lex(src);
        assert_eq!(cfg_test_spans(&lexed.tokens), vec![(1, 3)]);
    }

    #[test]
    fn cfg_not_test_item_is_ignored_for_non_test_cfgs() {
        let src = "#[cfg(feature = \"failpoints\")]\nmod f {\n}\n";
        let lexed = lex(src);
        assert!(cfg_test_spans(&lexed.tokens).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "// xtask:allow(L5): timing for progress reporting only\n\
                   let t = Instant::now();\n";
        let diags = check_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "// xtask:allow(L5)\nlet t = Instant::now();\n";
        let diags = check_source("crates/core/src/x.rs", src);
        // The bare allow still suppresses nothing AND reports itself.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("without a justification")));
    }

    #[test]
    fn banned_names_inside_strings_do_not_fire() {
        let src = r#"let s = "SystemTime::now thread_rng HashMap unsafe";"#;
        assert!(check_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn captured_accumulator_fires_but_local_does_not() {
        let local = "let s: f64 = (0..n).into_par_iter().map(|u| {\n\
                     let mut acc = 0.0; acc += x[u]; acc\n}).collect();\n";
        assert!(check_source("crates/core/src/x.rs", local).is_empty());
        let captured = "let mut total = 0.0f64;\n\
                        xs.par_iter().for_each(|&x| total += x);\n";
        let diags = check_source("crates/core/src/x.rs", captured);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, "L3");
    }

    #[test]
    fn turbofish_sum_is_caught() {
        let src = "let n = v.par_iter().map(|&x| (x as f64) * x).sum::<f64>();\n";
        let diags = check_source("crates/linalg/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "L3");
    }

    #[test]
    fn integer_par_sum_is_fine() {
        let src = "let n: usize = v.par_iter().map(|x| x.len()).sum();\n";
        assert!(check_source("crates/linalg/src/x.rs", src).is_empty());
    }

    #[test]
    fn crate_root_posture_attribute_required() {
        let diags = check_source("crates/foo/src/lib.rs", "pub fn a() {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("crate root"));
        let ok = "#![forbid(unsafe_code)]\npub fn a() {}\n";
        assert!(check_source("crates/foo/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_needs_justification_only_in_hashtable() {
        let src = "x.load(Ordering::Relaxed);\n";
        assert_eq!(check_source("crates/hashtable/src/x.rs", src).len(), 1);
        assert!(check_source("crates/utils/src/x.rs", src).is_empty());
        let ok = "// ordering: counter is advisory.\nx.load(Ordering::Relaxed);\n";
        assert!(check_source("crates/hashtable/src/x.rs", ok).is_empty());
    }
}
