//! Shimmed `loom::sync`: model-aware atomics and a reader/writer lock.

pub use std::sync::Arc;

/// Model-aware atomic integers.
///
/// Each operation is a scheduler yield point when called from a model
/// thread; outside a model the operation simply passes through to the
/// underlying `std` atomic. Memory-ordering arguments are accepted for API
/// compatibility but every operation runs with `SeqCst` semantics — the
/// explorer is sequentially consistent (see the crate docs).
pub mod atomic {
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    use crate::rt;

    #[inline]
    fn yield_point() {
        if let Some((sched, me)) = rt::current() {
            sched.yield_point(me);
        }
    }

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Model-aware atomic (see module docs).
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates a new atomic. Not a yield point: construction is
                /// not a shared-memory access.
                pub fn new(v: $val) -> Self {
                    Self(<$std>::new(v))
                }

                /// Atomic load (yield point).
                pub fn load(&self, _order: Ordering) -> $val {
                    yield_point();
                    self.0.load(SeqCst)
                }

                /// Atomic store (yield point).
                pub fn store(&self, v: $val, _order: Ordering) {
                    yield_point();
                    self.0.store(v, SeqCst)
                }

                /// Atomic fetch-add (yield point).
                pub fn fetch_add(&self, v: $val, _order: Ordering) -> $val {
                    yield_point();
                    self.0.fetch_add(v, SeqCst)
                }

                /// Atomic compare-exchange (yield point).
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$val, $val> {
                    yield_point();
                    self.0.compare_exchange(current, new, SeqCst, SeqCst)
                }

                /// Atomic compare-exchange-weak. The shim never fails
                /// spuriously (yield point).
                pub fn compare_exchange_weak(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consumes the atomic, returning the value (not a yield
                /// point: requires exclusive ownership).
                pub fn into_inner(self) -> $val {
                    self.0.into_inner()
                }
            }
        };
    }

    shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Model-aware atomic boolean (see module docs).
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Creates a new atomic boolean.
        pub fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Atomic load (yield point).
        pub fn load(&self, _order: Ordering) -> bool {
            yield_point();
            self.0.load(SeqCst)
        }

        /// Atomic store (yield point).
        pub fn store(&self, v: bool, _order: Ordering) {
            yield_point();
            self.0.store(v, SeqCst)
        }
    }
}

use std::cell::UnsafeCell;
use std::sync::OnceLock;

use crate::rt;

/// A model-aware reader/writer lock with the `parking_lot` guard API
/// (`read()` / `write()` return guards directly, `into_inner` returns `T`).
///
/// Only usable from inside [`crate::model`]: the lock state lives in the
/// scheduler, every acquire/release is an exploration choice point, and
/// contended acquires deschedule the thread until a release wakes it.
#[derive(Debug)]
pub struct RwLock<T> {
    id: OnceLock<usize>,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs at most one model thread at any instant and a
// thread only touches `data` while holding the logical lock recorded in the
// scheduler (shared for readers, exclusive for the writer), so all access
// to the `UnsafeCell` follows the usual RwLock aliasing discipline. `T:
// Send + Sync` bounds mirror `std::sync::RwLock`.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}
// SAFETY: sending the lock sends the owned `T`; same bound as std.
unsafe impl<T: Send> Send for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a new lock. Registration with the scheduler is deferred to
    /// the first acquire so construction outside a model is allowed.
    pub fn new(t: T) -> Self {
        Self { id: OnceLock::new(), data: UnsafeCell::new(t) }
    }

    fn ctx(&self) -> (std::sync::Arc<rt::Scheduler>, usize, usize) {
        let (sched, me) =
            rt::current().expect("loom::sync::RwLock may only be locked inside loom::model");
        let id = *self.id.get_or_init(|| sched.register_lock());
        (sched, me, id)
    }

    /// Acquires shared access, blocking (descheduling) while a writer
    /// holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let (sched, me, id) = self.ctx();
        sched.rw_read_acquire(me, id);
        RwLockReadGuard { lock: self, sched, me, id }
    }

    /// Acquires exclusive access, blocking (descheduling) while any other
    /// hold exists.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let (sched, me, id) = self.ctx();
        sched.rw_write_acquire(me, id);
        RwLockWriteGuard { lock: self, sched, me, id }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    sched: std::sync::Arc<rt::Scheduler>,
    me: usize,
    id: usize,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds a shared acquisition recorded in the
        // scheduler, so no writer can hold the lock concurrently.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.sched.rw_read_release(self.me, self.id);
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    sched: std::sync::Arc<rt::Scheduler>,
    me: usize,
    id: usize,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the exclusive acquisition recorded in
        // the scheduler.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`; exclusivity makes `&mut` sound.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.sched.rw_write_release(self.me, self.id);
    }
}
