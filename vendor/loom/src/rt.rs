//! The cooperative scheduler and schedule explorer.
//!
//! One model *execution* runs the user closure with every registered thread
//! mapped onto a real OS thread, but only one thread is ever runnable at a
//! time: each shim operation (atomic access, lock acquire/release, spawn,
//! join) is a *yield point* that hands control back to the scheduler, which
//! picks the next thread to run. The sequence of picks is the *schedule*.
//!
//! Exploration is a depth-first search over schedules: an execution records
//! every choice point (the set of runnable threads and the thread chosen);
//! after the execution finishes, the deepest choice point with an untried
//! alternative is advanced and the prefix is replayed. Replay is exact
//! because model bodies must be deterministic apart from scheduling.
//!
//! With `preemption_bound = None` the search is exhaustive over all
//! interleavings. With `Some(p)` it is bounded-exhaustive in the CHESS
//! sense: all schedules with at most `p` preemptive context switches (a
//! switch away from a thread that could have continued). Empirically most
//! concurrency bugs manifest within two preemptions, which keeps larger
//! models tractable.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex};

// Thread-local identity of a model thread: which scheduler it belongs to
// and its thread id within the model.
thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Returns the scheduler context of the current thread, if it is a model
/// thread.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<(Arc<Scheduler>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Panic payload used to unwind model threads when an execution aborts
/// (another thread failed an assertion or a deadlock was detected). The
/// thread wrapper recognises it and does not treat it as a model failure.
pub(crate) struct LoomAbort;

fn abort_unwind() -> ! {
    std::panic::panic_any(LoomAbort)
}

/// What a blocked thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockOn {
    /// A reader/writer lock, by lock id.
    Lock(usize),
    /// Another thread finishing, by thread id.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TStatus {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    /// Threads that were runnable at this point (ascending).
    runnable: Vec<usize>,
    /// Thread that was scheduled.
    chosen: usize,
    /// Thread that was running immediately before this choice (`None` when
    /// it blocked or finished and could not have continued).
    prev: Option<usize>,
}

impl Choice {
    /// Candidate order at this choice point: the previously running thread
    /// first (a non-preemptive continuation), then the rest ascending.
    fn candidates(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.runnable.len());
        if let Some(p) = self.prev {
            if self.runnable.contains(&p) {
                order.push(p);
            }
        }
        for &t in &self.runnable {
            if Some(t) != self.prev {
                order.push(t);
            }
        }
        order
    }

    /// Whether scheduling `cand` here would be a preemption: the previous
    /// thread could have continued but `cand` is a different thread.
    fn is_preemptive(&self, cand: usize) -> bool {
        match self.prev {
            Some(p) => p != cand && self.runnable.contains(&p),
            None => false,
        }
    }
}

#[derive(Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

struct State {
    status: Vec<TStatus>,
    /// Currently scheduled thread. `None` once every thread has finished
    /// (or before the first pick).
    active: Option<usize>,
    /// Schedule prefix to replay, as chosen thread ids.
    replay: Vec<usize>,
    /// Position within the schedule (replayed + freshly chosen).
    step: usize,
    /// Every decision made this execution.
    trace: Vec<Choice>,
    /// Reader/writer state per registered lock.
    locks: Vec<RwState>,
    /// Set once a failure is detected; triggers the abort protocol.
    failure: Option<String>,
    aborting: bool,
    finished_count: usize,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new(replay: Vec<usize>) -> Self {
        Self {
            state: Mutex::new(State {
                status: Vec::new(),
                active: None,
                replay,
                step: 0,
                trace: Vec::new(),
                locks: Vec::new(),
                failure: None,
                aborting: false,
                finished_count: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a new model thread, returning its id. The thread starts
    /// runnable but does not run until the scheduler picks it.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.status.push(TStatus::Runnable);
        st.status.len() - 1
    }

    /// Registers a new lock, returning its id.
    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.locks.push(RwState::default());
        st.locks.len() - 1
    }

    /// Picks the next thread to run. Must be called with the state lock
    /// held. `cur` is the thread that was running and is still runnable
    /// (`None` if it blocked or finished).
    fn pick_next(&self, st: &mut State, cur: Option<usize>) {
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> =
            (0..st.status.len()).filter(|&t| st.status[t] == TStatus::Runnable).collect();
        if runnable.is_empty() {
            if st.finished_count == st.status.len() {
                // Execution complete.
                st.active = None;
                self.cv.notify_all();
                return;
            }
            self.fail(st, "deadlock: every live thread is blocked".to_string());
            return;
        }
        let chosen = if st.step < st.replay.len() {
            let c = st.replay[st.step];
            assert!(
                runnable.contains(&c),
                "loom: schedule replay diverged (thread {c} not runnable); \
                 model bodies must be deterministic apart from scheduling"
            );
            c
        } else {
            // Default policy must match `Choice::candidates` order.
            match cur {
                Some(p) if runnable.contains(&p) => p,
                _ => runnable[0],
            }
        };
        st.trace.push(Choice { runnable, chosen, prev: cur });
        st.step += 1;
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Marks the execution failed and unparks every thread so it can
    /// unwind with [`LoomAbort`].
    fn fail(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        st.active = None;
        self.cv.notify_all();
    }

    /// Blocks until this thread is scheduled. Must be called with the
    /// state lock held; returns with the lock held.
    fn wait_scheduled<'a>(
        &self,
        mut st: std::sync::MutexGuard<'a, State>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        while st.active != Some(me) {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap();
        }
        st
    }

    /// A plain yield point: offer the scheduler a chance to switch.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        self.pick_next(&mut st, Some(me));
        let _st = self.wait_scheduled(st, me);
    }

    /// First wait of a freshly spawned thread: parks until the scheduler
    /// picks it for the first time.
    pub(crate) fn wait_first_schedule(&self, me: usize) {
        let st = self.state.lock().unwrap();
        let _st = self.wait_scheduled(st, me);
    }

    /// Marks `me` finished and schedules someone else. Wakes any joiners.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.status[me] = TStatus::Finished;
        st.finished_count += 1;
        for t in 0..st.status.len() {
            if st.status[t] == TStatus::Blocked(BlockOn::Join(me)) {
                st.status[t] = TStatus::Runnable;
            }
        }
        if st.aborting {
            // Teardown: just record the finish; pick_next would be a no-op.
            if st.finished_count == st.status.len() {
                st.active = None;
            }
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, None);
    }

    /// Records a model-thread panic as the execution failure.
    pub(crate) fn thread_panicked(&self, me: usize, msg: String) {
        let mut st = self.state.lock().unwrap();
        let msg = format!("thread {me} panicked: {msg}");
        self.fail(&mut st, msg);
    }

    /// Blocks `me` until thread `tid` finishes.
    pub(crate) fn join_wait(&self, me: usize, tid: usize) {
        self.yield_point(me);
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        if st.status[tid] != TStatus::Finished {
            st.status[me] = TStatus::Blocked(BlockOn::Join(tid));
            self.pick_next(&mut st, None);
            let _st = self.wait_scheduled(st, me);
        }
    }

    /// Acquires lock `id` in shared (read) mode.
    pub(crate) fn rw_read_acquire(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.state.lock().unwrap();
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if !st.locks[id].writer {
                st.locks[id].readers += 1;
                return;
            }
            st.status[me] = TStatus::Blocked(BlockOn::Lock(id));
            self.pick_next(&mut st, None);
            let _st = self.wait_scheduled(st, me);
            // Scheduled again after a release: retry the acquire.
        }
    }

    /// Acquires lock `id` in exclusive (write) mode.
    pub(crate) fn rw_write_acquire(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.state.lock().unwrap();
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if !st.locks[id].writer && st.locks[id].readers == 0 {
                st.locks[id].writer = true;
                return;
            }
            st.status[me] = TStatus::Blocked(BlockOn::Lock(id));
            self.pick_next(&mut st, None);
            let _st = self.wait_scheduled(st, me);
        }
    }

    /// Releases a shared hold of lock `id`.
    pub(crate) fn rw_read_release(&self, me: usize, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.locks[id].readers -= 1;
        if st.locks[id].readers == 0 {
            Self::wake_lock_waiters(&mut st, id);
        }
        if st.aborting {
            // Unwinding guard drop: do not reschedule.
            return;
        }
        self.pick_next(&mut st, Some(me));
        let _st = self.wait_scheduled(st, me);
    }

    /// Releases the exclusive hold of lock `id`.
    pub(crate) fn rw_write_release(&self, me: usize, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.locks[id].writer = false;
        Self::wake_lock_waiters(&mut st, id);
        if st.aborting {
            return;
        }
        self.pick_next(&mut st, Some(me));
        let _st = self.wait_scheduled(st, me);
    }

    fn wake_lock_waiters(st: &mut State, id: usize) {
        for t in 0..st.status.len() {
            if st.status[t] == TStatus::Blocked(BlockOn::Lock(id)) {
                st.status[t] = TStatus::Runnable;
            }
        }
    }

    /// Blocks the model driver until every thread has finished, then
    /// returns the recorded trace and failure (if any).
    fn wait_all_finished(&self) -> (Vec<Choice>, Option<String>) {
        let mut st = self.state.lock().unwrap();
        while st.finished_count != st.status.len() {
            st = self.cv.wait(st).unwrap();
        }
        (std::mem::take(&mut st.trace), st.failure.take())
    }
}

/// Number of preemptions in a choice prefix.
fn preemptions(prefix: &[Choice]) -> usize {
    prefix.iter().filter(|c| c.is_preemptive(c.chosen)).count()
}

/// Computes the next schedule to explore after an execution recorded
/// `trace`, or `None` when the search space is exhausted.
fn next_replay(mut trace: Vec<Choice>, bound: Option<usize>) -> Option<Vec<usize>> {
    loop {
        let last = trace.pop()?;
        let used = preemptions(&trace);
        let order = last.candidates();
        let cur_pos = order.iter().position(|&t| t == last.chosen).expect("chosen in candidates");
        for &cand in &order[cur_pos + 1..] {
            let cost = usize::from(last.is_preemptive(cand));
            if bound.is_none_or(|b| used + cost <= b) {
                let mut replay: Vec<usize> = trace.iter().map(|c| c.chosen).collect();
                replay.push(cand);
                return Some(replay);
            }
        }
    }
}

/// Outcome of a full exploration.
pub(crate) struct Exploration {
    pub executions: u64,
}

/// Runs `f` once under `sched` as model thread 0 and waits for every model
/// thread to finish.
fn run_once(
    sched: &Arc<Scheduler>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> (Vec<Choice>, Option<String>) {
    let root = sched.register_thread();
    debug_assert_eq!(root, 0);
    {
        let sched = Arc::clone(sched);
        std::thread::spawn(move || {
            run_thread(sched, root, move || f());
        });
    }
    {
        let mut st = sched.state.lock().unwrap();
        sched.pick_next(&mut st, None);
    }
    sched.wait_all_finished()
}

/// Body of every model thread (root and spawned): installs the scheduler
/// context, waits to be scheduled, runs `f`, and reports the outcome.
/// Returns `f`'s result when it ran to completion.
pub(crate) fn run_thread<T>(sched: Arc<Scheduler>, me: usize, f: impl FnOnce() -> T) -> Option<T> {
    set_current(Some((Arc::clone(&sched), me)));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.wait_first_schedule(me);
        f()
    }));
    set_current(None);
    let value = match out {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<LoomAbort>().is_none() {
                let msg = panic_message(&payload);
                sched.thread_panicked(me, msg);
            }
            None
        }
    };
    sched.finish(me);
    value
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Explores every schedule of `f` (subject to `bound`), panicking on the
/// first failing execution with a replayable description of its schedule.
pub(crate) fn explore(
    f: Arc<dyn Fn() + Send + Sync>,
    bound: Option<usize>,
    max_iterations: u64,
) -> Exploration {
    // Suppress the default panic hook while model threads run: expected
    // assertion failures inside candidate interleavings would otherwise
    // spam stderr once per failing execution.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut replay: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    let result = loop {
        executions += 1;
        if executions > max_iterations {
            break Err(format!(
                "exceeded {max_iterations} executions without exhausting the schedule space; \
                 shrink the model, set a preemption bound, or raise LOOM_MAX_ITERATIONS"
            ));
        }
        let sched = Arc::new(Scheduler::new(replay.clone()));
        let (trace, failure) = run_once(&sched, Arc::clone(&f));
        if let Some(msg) = failure {
            let sched_desc: Vec<usize> = trace.iter().map(|c| c.chosen).collect();
            let threads: BTreeSet<usize> = sched_desc.iter().copied().collect();
            break Err(format!(
                "model failed on execution {executions}: {msg}\n  \
                 threads: {threads:?}\n  schedule (thread ids in scheduling order): {sched_desc:?}"
            ));
        }
        match next_replay(trace, bound) {
            Some(r) => replay = r,
            None => break Ok(()),
        }
    };

    std::panic::set_hook(prev_hook);
    if let Err(msg) = result {
        panic!("loom: {msg}");
    }
    Exploration { executions }
}
