//! Model entry points: [`model`] and [`Builder`].

use std::sync::Arc;

use crate::rt;

/// Default cap on explored executions; a guard against schedule-space
/// blowup, not a tuning knob. Override with `LOOM_MAX_ITERATIONS`.
const DEFAULT_MAX_ITERATIONS: u64 = 500_000;

/// Configures and runs an exploration.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of preemptive context switches per execution
    /// (CHESS-style bound). `None` explores every interleaving. The
    /// `LOOM_MAX_PREEMPTIONS` environment variable overrides this.
    pub preemption_bound: Option<usize>,
    /// Hard cap on the number of executions; exceeding it panics. The
    /// `LOOM_MAX_ITERATIONS` environment variable overrides this.
    pub max_iterations: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with exhaustive exploration and the default iteration cap.
    pub fn new() -> Self {
        Self { preemption_bound: None, max_iterations: DEFAULT_MAX_ITERATIONS }
    }

    /// Sets the preemption bound (see [`Builder::preemption_bound`]).
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Explores every schedule of `f` permitted by the configuration,
    /// panicking on the first failing execution with the schedule that
    /// produced it. Prints a one-line summary on success.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let bound = match std::env::var("LOOM_MAX_PREEMPTIONS") {
            Ok(v) => v.parse::<usize>().ok(),
            Err(_) => self.preemption_bound,
        };
        let max_iterations = std::env::var("LOOM_MAX_ITERATIONS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(self.max_iterations);
        let stats = rt::explore(Arc::new(f), bound, max_iterations);
        eprintln!(
            "loom: explored {} interleavings (preemption bound {:?}) without failures",
            stats.executions, bound
        );
    }
}

/// Explores every interleaving of `f` (unbounded preemptions), panicking
/// on the first failing execution.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
