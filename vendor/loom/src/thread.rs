//! Shimmed `loom::thread`: spawn/join that the scheduler controls.

use std::sync::Arc;

use crate::rt;

/// Handle to a spawned model thread (or a plain `std` thread when called
/// outside a model).
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    /// Model-thread id; `None` when spawned outside a model.
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model this deschedules the caller until the target finishes.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            let (sched, me) =
                rt::current().expect("loom JoinHandle::join outside the owning model");
            sched.join_wait(me, tid);
        }
        match self.inner.join() {
            // `None` means the thread unwound (its panic was recorded with
            // the scheduler as the execution failure, or it aborted); any
            // payload here is synthesized for the caller.
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("loom model thread did not complete")),
            Err(e) => Err(e),
        }
    }
}

/// Spawns a thread. Inside a model the thread is registered with the
/// scheduler and runs only when scheduled; outside a model this is a plain
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        Some((sched, me)) => {
            let tid = sched.register_thread();
            let child_sched = Arc::clone(&sched);
            let inner = std::thread::spawn(move || rt::run_thread(child_sched, tid, f));
            // Offer the scheduler a chance to run the child right away.
            sched.yield_point(me);
            JoinHandle { inner, tid: Some(tid) }
        }
        None => {
            let inner = std::thread::spawn(move || Some(f()));
            JoinHandle { inner, tid: None }
        }
    }
}

/// Yield point without a memory access (maps to a scheduler switch inside
/// a model, `std::thread::yield_now` outside).
pub fn yield_now() {
    match rt::current() {
        Some((sched, me)) => sched.yield_point(me),
        None => std::thread::yield_now(),
    }
}
