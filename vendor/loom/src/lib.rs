//! Offline shim of the [loom](https://github.com/tokio-rs/loom) concurrency
//! model checker.
//!
//! The build environment is fully offline, so this crate reimplements the
//! slice of loom's API the workspace uses — [`model`]/[`model::Builder`],
//! [`thread::spawn`]/[`thread::JoinHandle::join`], [`sync::atomic`] and
//! [`sync::RwLock`] — on top of a cooperative scheduler (see `rt`):
//!
//! * Only one model thread runs at a time; every shim operation is a yield
//!   point where the scheduler may switch threads.
//! * Exploration is depth-first search over recorded schedules. With no
//!   preemption bound the search visits **every** interleaving of yield
//!   points; with `Builder::preemption_bound(p)` it visits every schedule
//!   with at most `p` preemptive switches (the CHESS heuristic), which
//!   keeps larger models tractable while still finding the vast majority
//!   of interleaving bugs.
//! * A failing execution (assertion panic or deadlock) aborts the run and
//!   reports the exact schedule, which is replayable because model bodies
//!   must be deterministic apart from scheduling.
//!
//! **Scope caveat:** the explorer is sequentially consistent. `Ordering`
//! arguments are accepted for API compatibility but all operations execute
//! as `SeqCst`, so this checker finds interleaving bugs (lost updates,
//! broken invariants, races between logical operations, deadlocks) — not
//! weak-memory reordering bugs. Justifications for relaxed orderings in
//! the workspace therefore rest on the happens-before arguments written at
//! each site (lint L4), with the loom models validating the interleaving
//! logic those arguments assume.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod rt;

pub mod model;
pub mod sync;
pub mod thread;

pub use model::model;

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, RwLock};

    /// Runs `f` expecting the model to fail, with the panic hook silenced
    /// so the expected failure does not spam test output.
    fn expect_model_failure(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = std::panic::catch_unwind(f);
        std::panic::set_hook(prev);
        let payload = out.expect_err("model should have failed");
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic".to_string()
        }
    }

    #[test]
    fn atomic_counter_has_no_lost_updates() {
        super::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = super::thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn nonatomic_read_modify_write_is_caught() {
        // load;store back-to-back is the canonical lost-update bug: some
        // interleaving must produce 1 instead of 2, and the explorer has
        // to find it.
        let msg = expect_model_failure(|| {
            super::model(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = super::thread::spawn(move || {
                    let v = c2.load(Ordering::Relaxed);
                    c2.store(v + 1, Ordering::Relaxed);
                });
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
                t.join().unwrap();
                assert_eq!(c.load(Ordering::Relaxed), 2);
            });
        });
        assert!(msg.contains("model failed"), "unexpected failure message: {msg}");
        assert!(msg.contains("schedule"), "failure must report its schedule: {msg}");
    }

    #[test]
    fn rwlock_writers_are_exclusive() {
        super::model(|| {
            let l = Arc::new(RwLock::new(0u64));
            let l2 = Arc::clone(&l);
            let t = super::thread::spawn(move || {
                let mut g = l2.write();
                // A non-atomic RMW under the write lock must be safe.
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = l.write();
                let v = *g;
                *g = v + 1;
            }
            t.join().unwrap();
            assert_eq!(*l.read(), 2);
        });
    }

    #[test]
    fn lock_order_inversion_deadlock_is_caught() {
        let msg = expect_model_failure(|| {
            super::model(|| {
                let a = Arc::new(RwLock::new(()));
                let b = Arc::new(RwLock::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = super::thread::spawn(move || {
                    let _gb = b2.write();
                    let _ga = a2.write();
                });
                let _ga = a.write();
                let _gb = b.write();
                drop(_gb);
                drop(_ga);
                t.join().unwrap();
            });
        });
        assert!(msg.contains("deadlock"), "expected deadlock report, got: {msg}");
    }

    #[test]
    fn readers_are_concurrent_with_readers() {
        super::model(|| {
            let l = Arc::new(RwLock::new(7u64));
            let l2 = Arc::clone(&l);
            let t = super::thread::spawn(move || *l2.read());
            let mine = *l.read();
            let theirs = t.join().unwrap();
            assert_eq!(mine, 7);
            assert_eq!(theirs, 7);
        });
    }

    #[test]
    fn preemption_bound_zero_still_runs_all_threads() {
        super::model::Builder::new().preemption_bound(0).check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = super::thread::spawn(move || {
                c2.fetch_add(3, Ordering::Relaxed);
            });
            c.fetch_add(4, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 7);
        });
    }

    #[test]
    fn passthrough_outside_model() {
        // Atomics and spawn work as plain std primitives outside a model.
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = super::thread::spawn(move || {
            c2.fetch_add(5, Ordering::SeqCst);
        });
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 5);
    }
}
