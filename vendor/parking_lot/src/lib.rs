//! Offline drop-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with panic-free (non-poisoning) guard acquisition,
//! backed by `std::sync`. A poisoned std lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

#![deny(unsafe_op_in_unsafe_fn)]

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
