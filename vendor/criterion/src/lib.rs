//! Offline drop-in for the subset of the `criterion` API used by the
//! `lightne-bench` benchmarks. Instead of criterion's statistical
//! machinery it runs each benchmark closure a small fixed number of times
//! and prints the mean wall-clock duration — enough to keep `cargo bench`
//! useful for coarse comparisons without any external dependencies.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export matching `criterion::black_box` (older call style).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;
const MEASURE_ITERS: u64 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _c: self }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; the shim runs a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation; ignored by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), &mut g);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { total_nanos: 0, iters: 0 };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total_nanos / u128::from(b.iters);
        println!("{label:<48} {:>12} ns/iter", mean);
    } else {
        println!("{label:<48} (no measurement)");
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters += MEASURE_ITERS;
    }
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $crate::Criterion::default();
                    $target(&mut c);
                }
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
