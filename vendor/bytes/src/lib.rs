//! Offline drop-in for the subset of the `bytes` crate used by
//! `lightne-graph`'s binary CSR format: little-endian integer reads and
//! writes through the `Buf` (on `&[u8]`) and `BufMut` (on `Vec<u8>`)
//! traits. Reads advance the slice cursor exactly like the real crate and
//! panic on underflow (the caller checks `remaining()` first).

#![deny(unsafe_op_in_unsafe_fn)]

/// Cursor-style reads from a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Appending writes to a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = Vec::new();
        buf.put_slice(b"MAGC");
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        buf.put_u32_le(42);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 16);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGC");
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.remaining(), 0);
    }
}
