//! Offline drop-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rayon` crate cannot be fetched; this shim keeps the exact
//! call-site API (prelude traits, combinators, `current_num_threads`,
//! `ThreadPoolBuilder`) while executing on `std::thread::scope`.
//!
//! Execution model: a parallel-iterator chain is *driven* by buffering the
//! upstream items into a `Vec` and then applying the last deferred closure
//! (a `map`/`filter_map`/`flat_map_iter` stage, or the final `for_each`)
//! across worker threads in fixed contiguous chunks. Per-chunk results are
//! concatenated in chunk order, so item order — and therefore every
//! order-sensitive reduction built on top — is identical to the sequential
//! execution regardless of thread count. That is a *stronger* guarantee
//! than real rayon gives (rayon's fold/reduce bracketing depends on
//! work-stealing); code written against this shim must not rely on it when
//! swapping the real crate back in. The workspace's numeric kernels
//! therefore do their own deterministic chunking (see
//! `lightne-linalg::qr::par_dot` and `DenseMatrix::gram_tn`).
//!
//! Unlike real rayon, `ThreadPoolBuilder::build_global` may be called
//! repeatedly to re-size the pool; `lightne-utils::parallel` relies on
//! this for the `--threads` CLI flag and the thread-count determinism
//! tests.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Invoked with the worker index each time a thread starts executing a
/// parallel chunk (workers are per-region `std::thread::scope` threads in
/// this shim, so per-thread setup like core pinning must be re-applied at
/// every region entry — hence a hook here rather than rayon's
/// `start_handler`, which fires once per pool thread).
static WORKER_START_HOOK: Mutex<Option<fn(usize)>> = Mutex::new(None);

/// Registers (or, with `None`, clears) a function run on each worker at
/// the start of every parallel chunk it executes, receiving the worker
/// index (`0..current_num_threads()`; index 0 is the calling thread).
/// Used by `lightne-utils::affinity` for opt-in core pinning. The hook
/// must be cheap and must not call back into parallel iterators.
pub fn set_worker_start_hook(hook: Option<fn(usize)>) {
    *WORKER_START_HOOK.lock().unwrap() = hook;
}

thread_local! {
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel consumers will use.
pub fn current_num_threads() -> usize {
    match CONFIGURED_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Index of the current worker inside a parallel region, `None` outside.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced by
/// the shim, kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Global thread-pool configuration, mirroring rayon's builder.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "use available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. The shim allows re-sizing at
    /// any time (real rayon errors after first initialization).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Runs both closures (sequentially in the shim) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

fn effective_workers(n_items: usize) -> usize {
    if n_items < 2 || current_thread_index().is_some() {
        // Tiny workload, or already inside a parallel region: run inline
        // rather than oversubscribing with nested scopes.
        return 1;
    }
    current_num_threads().min(n_items)
}

fn run_with_index<R>(idx: usize, f: impl FnOnce() -> R) -> R {
    if let Some(hook) = *WORKER_START_HOOK.lock().unwrap() {
        hook(idx);
    }
    WORKER_INDEX.with(|w| w.set(Some(idx)));
    let out = f();
    WORKER_INDEX.with(|w| w.set(None));
    out
}

/// Applies `f` to every item across worker threads, preserving item order
/// in the output (chunks are contiguous and concatenated in order).
pub(crate) fn map_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_workers(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        parts.push(std::mem::replace(&mut rest, tail));
    }
    parts.push(rest);

    let mut out: Vec<Vec<R>> = Vec::with_capacity(parts.len());
    std::thread::scope(|s| {
        let mut iter = parts.into_iter();
        let first = iter.next().unwrap();
        let handles: Vec<_> = iter
            .enumerate()
            .map(|(i, part)| {
                s.spawn(move || {
                    run_with_index(i + 1, || part.into_iter().map(f).collect::<Vec<R>>())
                })
            })
            .collect();
        out.push(run_with_index(0, || first.into_iter().map(f).collect()));
        for h in handles {
            out.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

pub mod iter {
    use super::map_parallel;

    /// Conversion into a parallel iterator (rayon-compatible entry point).
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// The shim's parallel iterator: `drive` realizes all items (running
    /// deferred `map`-family closures across worker threads), consumers
    /// fold the realized items in original order.
    pub trait ParallelIterator: Sized + Send {
        type Item: Send;

        /// Realizes every item, in order.
        fn drive(self) -> Vec<Self::Item>;

        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        fn filter<F>(self, f: F) -> Filter<Self, F>
        where
            F: Fn(&Self::Item) -> bool + Sync + Send,
        {
            Filter { base: self, f }
        }

        fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> Option<R> + Sync + Send,
        {
            FilterMap { base: self, f }
        }

        fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
        where
            I: IntoIterator,
            I::Item: Send,
            F: Fn(Self::Item) -> I + Sync + Send,
        {
            FlatMapIter { base: self, f }
        }

        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
        where
            Z: IntoParallelIterator,
        {
            Zip { a: self, b: other.into_par_iter() }
        }

        /// Chunk-size hint; the shim always chunks by worker count.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            map_parallel(self.drive(), &f);
        }

        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.drive().into_iter().collect()
        }

        fn count(self) -> usize {
            self.drive().len()
        }

        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.drive().into_iter().sum()
        }

        fn max(self) -> Option<Self::Item>
        where
            Self::Item: Ord,
        {
            self.drive().into_iter().max()
        }

        fn min(self) -> Option<Self::Item>
        where
            Self::Item: Ord,
        {
            self.drive().into_iter().min()
        }

        fn any<F>(self, f: F) -> bool
        where
            F: Fn(Self::Item) -> bool + Sync + Send,
        {
            self.drive().into_iter().any(f)
        }

        fn all<F>(self, f: F) -> bool
        where
            F: Fn(Self::Item) -> bool + Sync + Send,
        {
            self.drive().into_iter().all(f)
        }

        /// Sequential left fold from `identity()`, in item order — a
        /// deterministic refinement of rayon's unspecified bracketing.
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync + Send,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        {
            self.drive().into_iter().fold(identity(), op)
        }
    }

    /// Base parallel iterator over a buffered sequential iterator.
    pub struct SeqBase<I>(pub(crate) I);

    impl<I> ParallelIterator for SeqBase<I>
    where
        I: Iterator + Send,
        I::Item: Send,
    {
        type Item = I::Item;
        fn drive(self) -> Vec<I::Item> {
            self.0.collect()
        }
    }

    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, R> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        F: Fn(B::Item) -> R + Sync + Send,
        R: Send,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            map_parallel(self.base.drive(), &self.f)
        }
    }

    pub struct Filter<B, F> {
        base: B,
        f: F,
    }

    impl<B, F> ParallelIterator for Filter<B, F>
    where
        B: ParallelIterator,
        F: Fn(&B::Item) -> bool + Sync + Send,
    {
        type Item = B::Item;
        fn drive(self) -> Vec<B::Item> {
            let Filter { base, f } = self;
            base.drive().into_iter().filter(|t| f(t)).collect()
        }
    }

    pub struct FilterMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, R> ParallelIterator for FilterMap<B, F>
    where
        B: ParallelIterator,
        F: Fn(B::Item) -> Option<R> + Sync + Send,
        R: Send,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            map_parallel(self.base.drive(), &self.f).into_iter().flatten().collect()
        }
    }

    pub struct FlatMapIter<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, I> ParallelIterator for FlatMapIter<B, F>
    where
        B: ParallelIterator,
        F: Fn(B::Item) -> I + Sync + Send,
        I: IntoIterator,
        I::Item: Send,
    {
        type Item = I::Item;
        fn drive(self) -> Vec<I::Item> {
            let FlatMapIter { base, f } = self;
            let g = |t: B::Item| f(t).into_iter().collect::<Vec<_>>();
            map_parallel(base.drive(), &g).into_iter().flatten().collect()
        }
    }

    pub struct Enumerate<B> {
        base: B,
    }

    impl<B> ParallelIterator for Enumerate<B>
    where
        B: ParallelIterator,
    {
        type Item = (usize, B::Item);
        fn drive(self) -> Vec<(usize, B::Item)> {
            self.base.drive().into_iter().enumerate().collect()
        }
    }

    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    impl<A, B> ParallelIterator for Zip<A, B>
    where
        A: ParallelIterator,
        B: ParallelIterator,
    {
        type Item = (A::Item, B::Item);
        fn drive(self) -> Vec<(A::Item, B::Item)> {
            self.a.drive().into_iter().zip(self.b.drive()).collect()
        }
    }

    impl<P: ParallelIterator> IntoParallelIterator for P {
        type Item = P::Item;
        type Iter = P;
        fn into_par_iter(self) -> P {
            self
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = SeqBase<std::vec::IntoIter<T>>;
        fn into_par_iter(self) -> Self::Iter {
            SeqBase(self.into_iter())
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        T: Send,
        std::ops::Range<T>: Iterator<Item = T> + Send,
    {
        type Item = T;
        type Iter = SeqBase<std::ops::Range<T>>;
        fn into_par_iter(self) -> Self::Iter {
            SeqBase(self)
        }
    }
}

pub mod slice {
    use super::iter::{ParallelIterator, SeqBase};

    /// Parallel iterator over immutable slice chunks
    /// (`par_chunks`; also the named return type of
    /// `DenseMatrix::par_rows`).
    pub struct Chunks<'a, T>(pub(crate) std::slice::Chunks<'a, T>);

    impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
        type Item = &'a [T];
        fn drive(self) -> Vec<&'a [T]> {
            self.0.collect()
        }
    }

    /// Parallel iterator over mutable slice chunks (`par_chunks_mut`).
    pub struct ChunksMut<'a, T>(pub(crate) std::slice::ChunksMut<'a, T>);

    impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
        type Item = &'a mut [T];
        fn drive(self) -> Vec<&'a mut [T]> {
            self.0.collect()
        }
    }

    /// `par_iter` / `par_chunks` on slices (and through deref, `Vec`).
    pub trait ParallelSlice<T: Sync> {
        fn as_parallel_slice(&self) -> &[T];

        fn par_iter(&self) -> SeqBase<std::slice::Iter<'_, T>> {
            SeqBase(self.as_parallel_slice().iter())
        }

        fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            Chunks(self.as_parallel_slice().chunks(chunk_size))
        }
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn as_parallel_slice(&self) -> &[T] {
            self
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` / `par_sort_unstable*` on slices.
    pub trait ParallelSliceMut<T: Send> {
        fn as_parallel_slice_mut(&mut self) -> &mut [T];

        fn par_iter_mut(&mut self) -> SeqBase<std::slice::IterMut<'_, T>> {
            SeqBase(self.as_parallel_slice_mut().iter_mut())
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ChunksMut(self.as_parallel_slice_mut().chunks_mut(chunk_size))
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_parallel_slice_mut().sort_unstable();
        }

        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.as_parallel_slice_mut().sort_unstable_by(compare);
        }

        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K,
        {
            self.as_parallel_slice_mut().sort_unstable_by_key(key);
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..5_000usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut data = vec![0u32; 1000];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[999], (999 / 7) as u32);
    }

    #[test]
    fn sum_matches_sequential_bracketing() {
        let xs: Vec<f64> = (0..1_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = xs.iter().sum();
        let par: f64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    /// Pool re-sizing and worker indexing, in one test: the pool config
    /// is process-global, so exercising both here avoids races with
    /// concurrently running tests.
    #[test]
    fn pool_config_and_worker_index() {
        assert_eq!(super::current_thread_index(), None);
        super::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(super::current_num_threads(), 3);
        (0..64usize).into_par_iter().for_each(|_| {
            let idx = super::current_thread_index().expect("inside region");
            assert!(idx < 3);
        });
        assert_eq!(super::current_thread_index(), None);
        super::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }
}
