//! Crash-consistency matrix: for every registered fail point, inject
//! every applicable fault into a checkpointing run and into a resuming
//! run, and assert the system's contract — the resumed (or re-run)
//! pipeline either reproduces the uninterrupted embedding byte for byte
//! or fails with a typed [`EngineError`]. There is no third outcome: no
//! silently wrong embedding, no panic once faults are disarmed, no
//! half-trusted artifact.
//!
//! The fail-point registry is process-global, so every test here
//! serializes on one mutex and disarms on exit.

use lightne::core::{EngineError, LightNe, LightNeConfig, LightNeOutput, RunOptions};
use lightne::gen::generators::chung_lu;
use lightne::graph::Graph;
use lightne::utils::faults::{self, FaultAction};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests sharing the process-global fail-point registry.
fn registry_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lightne_crash_{}_{name}", std::process::id()));
    p
}

fn graph() -> Graph {
    chung_lu(150, 1_000, 2.4, 29)
}

fn config() -> LightNeConfig {
    LightNeConfig { dim: 8, window: 3, sample_ratio: 1.0, seed: 4, ..Default::default() }
}

fn bits(out: &LightNeOutput) -> Vec<u32> {
    out.embedding.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn save_opts(dir: &Path) -> RunOptions {
    RunOptions { save_artifacts: Some(dir.to_path_buf()), ..Default::default() }
}

fn resume_opts(dir: &Path) -> RunOptions {
    RunOptions { resume_from: Some(dir.to_path_buf()), ..Default::default() }
}

/// Every fail point registered across the system.
fn all_points() -> Vec<&'static str> {
    let mut pts = Vec::new();
    pts.extend_from_slice(lightne::core::artifacts::FAIL_POINTS);
    pts.extend_from_slice(lightne::core::engine::FAIL_POINTS);
    pts.extend_from_slice(lightne::linalg::matio::FAIL_POINTS);
    pts
}

/// The actions worth injecting at `point`. Every point takes an I/O error
/// and a crash; the artifact-store write points additionally take the
/// two silent-corruption actions (they corrupt the byte stream between
/// checksumming and disk, modelling storage that acknowledges a write it
/// then mangles).
fn actions_for(point: &str) -> Vec<FaultAction> {
    let mut acts = vec![FaultAction::IoError, FaultAction::Panic];
    if point.starts_with("artifacts.write.") {
        acts.push(FaultAction::Truncate(3));
        acts.push(FaultAction::BitFlip(41));
    }
    acts
}

/// Runs the pipeline under `opts` with panics captured. Returns `None`
/// when the run panicked (allowed only while a `panic` fault is armed).
fn run_caught(
    pipe: &LightNe,
    g: &Graph,
    opts: RunOptions,
) -> Option<Result<LightNeOutput, EngineError>> {
    catch_unwind(AssertUnwindSafe(|| pipe.embed_with(g, opts))).ok()
}

/// Asserts the crash-consistency contract on one pipeline outcome:
/// byte-identical success or a typed error — a panic is only legal when
/// the armed action is `Panic`.
fn assert_contract(
    what: &str,
    outcome: Option<Result<LightNeOutput, EngineError>>,
    want: &[u32],
    panic_ok: bool,
) {
    match outcome {
        None => assert!(panic_ok, "{what}: panicked without a panic fault armed"),
        Some(Ok(out)) => {
            assert_eq!(bits(&out), want, "{what}: embedding diverged from the uninterrupted run")
        }
        Some(Err(_)) => {} // typed by construction: every failure is an EngineError
    }
}

#[test]
fn every_fail_point_crash_is_recoverable_or_typed() {
    let _guard = registry_guard();
    faults::disarm_all();
    faults::reset_hits();
    assert!(faults::enabled(), "crash tests require the failpoints feature");
    // The matrix triggers dozens of intentional panics; keep them off
    // the test output. catch_unwind still observes them.
    std::panic::set_hook(Box::new(|_| {}));

    let g = graph();
    let pipe = LightNe::new(config());
    let want = bits(&pipe.embed(&g));

    // One clean checkpointed store, shared by every resume-side case
    // (resume-only runs never modify the store).
    let clean = tmp("clean");
    std::fs::remove_dir_all(&clean).ok();
    let saved = pipe.embed_with(&g, save_opts(&clean)).unwrap();
    assert_eq!(bits(&saved), want, "checkpointing must not change the embedding");

    let dir = tmp("matrix");
    for point in all_points() {
        for action in actions_for(point) {
            let what = format!("{point}={action}");
            let panic_ok = matches!(action, FaultAction::Panic);

            // Fault armed while saving artifacts: the interrupted (or
            // silently corrupted) store must never poison a later run.
            std::fs::remove_dir_all(&dir).ok();
            faults::arm(point, action).unwrap();
            let crashed = run_caught(&pipe, &g, save_opts(&dir));
            faults::disarm_all();
            assert_contract(&format!("save under {what}"), crashed, &want, panic_ok);
            if dir.is_dir() {
                let resumed = run_caught(&pipe, &g, resume_opts(&dir));
                assert_contract(&format!("resume after {what}"), resumed, &want, false);
            }

            // Fault armed while resuming from a pristine store.
            faults::arm(point, action).unwrap();
            let resumed = run_caught(&pipe, &g, resume_opts(&clean));
            faults::disarm_all();
            assert_contract(&format!("resume under {what}"), resumed, &want, panic_ok);
        }
    }
    let _ = std::panic::take_hook();

    // Coverage: the matrix must have exercised every registered point at
    // least once — an unreachable fail point is a vacuous guarantee.
    let hits = faults::hits();
    for point in all_points() {
        let n = hits.iter().find(|(p, _)| p == point).map_or(0, |(_, n)| *n);
        assert!(n > 0, "fail point {point} was never hit by the matrix");
    }

    std::fs::remove_dir_all(&clean).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_save_faults_leave_a_store_that_degrades_with_a_recorded_fallback() {
    let _guard = registry_guard();
    faults::disarm_all();

    let g = graph();
    let pipe = LightNe::new(config());
    let want = bits(&pipe.embed(&g));

    // Corrupt the deepest artifact silently during save: the save run
    // reports success (the storage lied to it), the resume detects the
    // damage via the manifest checksum and records its fallback.
    let dir = tmp("fallback");
    std::fs::remove_dir_all(&dir).ok();
    faults::arm("artifacts.write.initial", FaultAction::BitFlip(7)).unwrap();
    let saved = pipe.embed_with(&g, save_opts(&dir));
    faults::disarm_all();
    assert!(saved.is_ok(), "bit rot after the checksum is invisible to the writer");

    let resumed = pipe.embed_with(&g, resume_opts(&dir)).unwrap();
    assert_eq!(bits(&resumed), want, "degraded resume diverged");
    assert!(
        resumed.stats.resume_fallbacks.iter().any(|f| f.contains("initial.emb")),
        "missing fallback note: {:?}",
        resumed.stats.resume_fallbacks
    );

    // The same store under --strict-resume is a typed corruption error.
    let strict =
        RunOptions { resume_from: Some(dir.clone()), strict_resume: true, ..Default::default() };
    let err = pipe.embed_with(&g, strict).unwrap_err();
    assert!(matches!(err, EngineError::Corrupt { .. }), "expected Corrupt, got: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_arms_fail_points_from_flag_and_environment() {
    let _guard = registry_guard();
    faults::disarm_all();

    let g = graph();
    let graph_path = tmp("cli_graph.txt");
    lightne::graph::io::write_edge_list(&g, &graph_path).unwrap();
    let emb_a = tmp("cli_a.emb");
    let emb_b = tmp("cli_b.emb");
    let art = tmp("cli_art");
    std::fs::remove_dir_all(&art).ok();

    let run = |args: &[&str]| -> Result<String, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        lightne::cli::run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    };
    let common = |out: &Path| {
        vec![
            "embed".to_string(),
            "--graph".into(),
            graph_path.to_str().unwrap().into(),
            "--out".into(),
            out.to_str().unwrap().into(),
            "--dim".into(),
            "8".into(),
            "--window".into(),
            "3".into(),
            "--seed".into(),
            "4".into(),
        ]
    };

    // Reference CLI embedding, no faults.
    let args: Vec<String> = common(&emb_a);
    let args_ref: Vec<&str> = args.iter().map(String::as_str).collect();
    run(&args_ref).unwrap();

    // --fail-point aborts the run with the injected error...
    let mut args = common(&emb_b);
    args.extend(["--save-artifacts".into(), art.to_str().unwrap().into()]);
    let mut faulted = args.clone();
    faulted.extend(["--fail-point".into(), "engine.stage.netmf=io-error".into()]);
    let faulted: Vec<&str> = faulted.iter().map(String::as_str).collect();
    let err = run(&faulted).unwrap_err();
    assert!(err.contains("injected fault"), "unhelpful error: {err}");
    faults::disarm_all();

    // ...after which the same command line completes and matches the
    // reference byte for byte (the interrupted store is resumable too,
    // but here the save dir is simply reset).
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    run(&args).unwrap();
    assert_eq!(std::fs::read(&emb_a).unwrap(), std::fs::read(&emb_b).unwrap());

    // A malformed spec is rejected before any work happens.
    let mut bad = common(&emb_b);
    bad.extend(["--fail-point".into(), "not-a-spec".into()]);
    let bad: Vec<&str> = bad.iter().map(String::as_str).collect();
    let err = run(&bad).unwrap_err();
    assert!(err.contains("point=action"), "unhelpful error: {err}");

    // The environment route arms the same registry.
    std::env::set_var(faults::ENV_VAR, "engine.stage.rsvd=io-error");
    let err = run(&args_ref).unwrap_err();
    std::env::remove_var(faults::ENV_VAR);
    faults::disarm_all();
    assert!(err.contains("injected fault"), "unhelpful error: {err}");

    for f in [&graph_path, &emb_a, &emb_b] {
        std::fs::remove_file(f).ok();
    }
    std::fs::remove_dir_all(&art).ok();
}
