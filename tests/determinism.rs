//! Bitwise determinism of the embedding pipeline.
//!
//! LightNE's kernels are engineered so that a fixed seed produces a
//! byte-identical embedding regardless of scheduling: the concurrent edge
//! table accumulates fixed-point integers (exactly commutative), and every
//! floating-point reduction uses fixed block sizes so the summation
//! bracketing never depends on the thread count.
//!
//! Everything lives in ONE test function on purpose: all tests in a binary
//! share the global rayon pool, and this test resizes it mid-flight.

use lightne::core::{LightNe, LightNeConfig};
use lightne::eval::classify::train_test_split;
use lightne::eval::linkpred::split_edges;
use lightne::gen::sbm::{labelled_sbm, SbmConfig};
use lightne::graph::{Codec, CompressedGraph, V2Graph, WeightedGraph};
use lightne::utils::parallel::configure_threads;

fn bits(m: &lightne::linalg::DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn same_seed_same_bytes_across_runs_and_thread_counts() {
    let cfg = SbmConfig {
        n: 600,
        communities: 4,
        avg_degree: 16.0,
        mixing: 0.1,
        overlap: 0.0,
        gamma: 2.5,
    };
    let (g, labels) = labelled_sbm(&cfg, 77);
    let gw = WeightedGraph::from_unweighted(&g);
    let pipe = LightNe::new(LightNeConfig {
        dim: 24,
        window: 5,
        sample_ratio: 1.5,
        seed: 42,
        ..Default::default()
    });

    // Two runs in a row, same pool: byte-identical.
    let a1 = pipe.embed(&g);
    let a2 = pipe.embed(&g);
    assert_eq!(bits(&a1.embedding), bits(&a2.embedding), "embed not reproducible");

    let w1 = pipe.embed_weighted(&gw);
    let w2 = pipe.embed_weighted(&gw);
    assert_eq!(bits(&w1.embedding), bits(&w2.embedding), "embed_weighted not reproducible");

    // Thread sweep: 1 worker vs 4 workers must give the same bytes. The
    // earlier runs above used the default pool (one worker per core).
    assert_eq!(configure_threads(1), 1);
    let s1 = pipe.embed(&g);
    let sw1 = pipe.embed_weighted(&gw);
    assert_eq!(configure_threads(4), 4);
    let s4 = pipe.embed(&g);
    let sw4 = pipe.embed_weighted(&gw);

    assert_eq!(bits(&s1.embedding), bits(&s4.embedding), "embed differs across thread counts");
    assert_eq!(
        bits(&sw1.embedding),
        bits(&sw4.embedding),
        "embed_weighted differs across thread counts"
    );
    // And both match the default-pool runs.
    assert_eq!(bits(&a1.embedding), bits(&s1.embedding), "embed differs from default pool");
    assert_eq!(
        bits(&w1.embedding),
        bits(&sw1.embedding),
        "embed_weighted differs from default pool"
    );

    // Seeded evaluation splits are part of the determinism contract too:
    // the train/held-out edge split and the labelled-vertex split must be
    // bitwise identical across thread counts AND across graph backends
    // (csr / v1 / v2 all visit neighbours in the same ascending order).
    let v1 = CompressedGraph::from_graph(&g);
    let v2 = V2Graph::from_graph(&g, Codec::parse("arice").unwrap());
    let (ref_train, ref_held) = split_edges(&g, 0.2, 91);
    let ref_labels = train_test_split(&labels, 0.5, 91);
    assert!(!ref_held.is_empty(), "holdout split is vacuous");
    for threads in [1usize, 2, 8] {
        assert_eq!(configure_threads(threads), threads);
        for (name, split) in [
            ("csr", split_edges(&g, 0.2, 91)),
            ("v1", split_edges(&v1, 0.2, 91)),
            ("v2", split_edges(&v2, 0.2, 91)),
        ] {
            assert_eq!(split.0, ref_train, "{name} train graph differs at {threads} threads");
            assert_eq!(split.1, ref_held, "{name} held-out edges differ at {threads} threads");
        }
        assert_eq!(
            train_test_split(&labels, 0.5, 91),
            ref_labels,
            "label split differs at {threads} threads"
        );
    }
}
