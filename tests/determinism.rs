//! Bitwise determinism of the embedding pipeline.
//!
//! LightNE's kernels are engineered so that a fixed seed produces a
//! byte-identical embedding regardless of scheduling: the concurrent edge
//! table accumulates fixed-point integers (exactly commutative), and every
//! floating-point reduction uses fixed block sizes so the summation
//! bracketing never depends on the thread count.
//!
//! Everything lives in ONE test function on purpose: all tests in a binary
//! share the global rayon pool, and this test resizes it mid-flight.

use lightne::core::{LightNe, LightNeConfig};
use lightne::gen::sbm::{labelled_sbm, SbmConfig};
use lightne::graph::WeightedGraph;
use lightne::utils::parallel::configure_threads;

fn bits(m: &lightne::linalg::DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn same_seed_same_bytes_across_runs_and_thread_counts() {
    let cfg = SbmConfig {
        n: 600,
        communities: 4,
        avg_degree: 16.0,
        mixing: 0.1,
        overlap: 0.0,
        gamma: 2.5,
    };
    let (g, _) = labelled_sbm(&cfg, 77);
    let gw = WeightedGraph::from_unweighted(&g);
    let pipe = LightNe::new(LightNeConfig {
        dim: 24,
        window: 5,
        sample_ratio: 1.5,
        seed: 42,
        ..Default::default()
    });

    // Two runs in a row, same pool: byte-identical.
    let a1 = pipe.embed(&g);
    let a2 = pipe.embed(&g);
    assert_eq!(bits(&a1.embedding), bits(&a2.embedding), "embed not reproducible");

    let w1 = pipe.embed_weighted(&gw);
    let w2 = pipe.embed_weighted(&gw);
    assert_eq!(bits(&w1.embedding), bits(&w2.embedding), "embed_weighted not reproducible");

    // Thread sweep: 1 worker vs 4 workers must give the same bytes. The
    // earlier runs above used the default pool (one worker per core).
    assert_eq!(configure_threads(1), 1);
    let s1 = pipe.embed(&g);
    let sw1 = pipe.embed_weighted(&gw);
    assert_eq!(configure_threads(4), 4);
    let s4 = pipe.embed(&g);
    let sw4 = pipe.embed_weighted(&gw);

    assert_eq!(bits(&s1.embedding), bits(&s4.embedding), "embed differs across thread counts");
    assert_eq!(
        bits(&sw1.embedding),
        bits(&sw4.embedding),
        "embed_weighted differs across thread counts"
    );
    // And both match the default-pool runs.
    assert_eq!(bits(&a1.embedding), bits(&s1.embedding), "embed differs from default pool");
    assert_eq!(
        bits(&w1.embedding),
        bits(&sw1.embedding),
        "embed_weighted differs from default pool"
    );
}
