//! Bitwise thread-count determinism of the register-blocked linalg
//! kernels in isolation (the pipeline-level sweep lives in
//! `determinism.rs`).
//!
//! The blocked kernels promise that their output bytes depend only on
//! the input, never on the rayon pool size: GEMM accumulates in fixed
//! KC/MC/MR/NR blocks, QR uses fixed panel widths and dot-product block
//! bracketing, and the Jacobi SVD follows a fixed round-robin schedule
//! whose disjoint-pair rotations commute exactly.
//!
//! Everything lives in ONE test function on purpose: all tests in a
//! binary share the global rayon pool, and this test resizes it
//! mid-flight. Sizes are chosen to actually hit the parallel paths
//! (several MC = 128 row blocks for GEMM, rows above the 2¹⁴
//! `PAR_THRESHOLD` for QR, columns above the 128-column `PAR_COLS`
//! cutoff for the Jacobi sweep).

use lightne::linalg::qr::orthonormalize_columns;
use lightne::linalg::svd::jacobi_svd;
use lightne::linalg::{randomized_svd, CsrMatrix, DenseMatrix, RsvdConfig};
use lightne::utils::parallel::configure_threads;
use lightne::utils::rng::XorShiftStream;

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn sigma_bits(s: &[f32]) -> Vec<u32> {
    s.iter().map(|x| x.to_bits()).collect()
}

fn sparse_symmetric(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShiftStream::new(seed, 0);
    let mut coo = Vec::new();
    for i in 0..n as u32 {
        for _ in 0..nnz_per_row.div_ceil(2) {
            let j = rng.bounded_usize(n) as u32;
            let w = rng.unit_f32();
            coo.push((i, j, w));
            coo.push((j, i, w));
        }
    }
    CsrMatrix::from_coo(n, n, coo)
}

/// One full set of kernel outputs, each reduced to a labelled bit
/// pattern.
fn run_all() -> Vec<(&'static str, Vec<u32>)> {
    // GEMM: 300 rows = several MC = 128 blocks; k = 300 = two KC panels.
    let a = DenseMatrix::gaussian(300, 300, 1);
    let b = DenseMatrix::gaussian(300, 48, 2);
    let gemm = bits(&a.matmul(&b));

    // QR: rows above PAR_THRESHOLD so par_dot/par_axpy actually split.
    let mut q = DenseMatrix::gaussian(20_000, 24, 3);
    orthonormalize_columns(&mut q);
    let qr = bits(&q);

    // Jacobi: 130 columns > PAR_COLS = 128, so the parallel round path
    // runs (and must match what 1 thread produces).
    let small = DenseMatrix::gaussian(130, 130, 4);
    let svd = jacobi_svd(&small);

    // End-to-end randomized SVD over a sparsifier-shaped matrix.
    let m = sparse_symmetric(5_000, 12, 5);
    let cfg = RsvdConfig { rank: 16, oversampling: 8, power_iters: 1, seed: 9 };
    let r = randomized_svd(&m, &cfg);
    vec![
        ("gemm", gemm),
        ("panel qr", qr),
        ("jacobi U", bits(&svd.u)),
        ("jacobi sigma", sigma_bits(&svd.sigma)),
        ("rsvd U", bits(&r.u)),
        ("rsvd sigma", sigma_bits(&r.sigma)),
    ]
}

#[test]
fn kernel_outputs_identical_across_thread_counts() {
    // Per SIMD tier (scalar always; AVX2/AVX-512 when the host supports
    // them — the clamp in `set_tier` skips unsupported tiers), the whole
    // kernel suite must be bitwise identical at 1, 2, and 8 threads:
    // every parallel split keeps its fixed-block summation bracketing
    // regardless of which micro-kernel computes the blocks. The
    // `LIGHTNE_SIMD` env knob caps only the *initial* tier; `set_tier`
    // here forces each reachable tier explicitly so the sweep covers
    // both dispatch paths whichever way CI pins the knob.
    use lightne::linalg::simd::{detected_tier, set_tier, SimdTier};
    let mut covered = 0;
    for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512] {
        if set_tier(tier) != tier {
            continue; // host cannot run this tier
        }
        covered += 1;
        assert_eq!(configure_threads(1), 1);
        let base = run_all();
        for threads in [2usize, 8] {
            assert_eq!(configure_threads(threads), threads);
            let got = run_all();
            for ((name, want), (_, have)) in base.iter().zip(&got) {
                assert_eq!(
                    want,
                    have,
                    "{name} bytes differ at {threads} threads on the {} tier",
                    tier.name()
                );
            }
        }
    }
    assert!(covered >= 1, "the scalar tier must always be runnable");
    set_tier(detected_tier());
}
