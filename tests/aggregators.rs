//! Cross-aggregator equivalence under the real sample stream.
//!
//! The same PathSampling stream is routed into all three aggregation
//! strategies — the shared [`ConcurrentEdgeTable`], the vertex-range
//! [`ShardedEdgeTable`], and NetSMF's per-thread
//! [`ThreadLocalAggregator`] — at 1, 2, and 8 worker threads. The two
//! fixed-point tables must drain bitwise-identical (key, weight) lists at
//! every thread count; the thread-local buffers accumulate f32 directly,
//! so their merge order (and hence rounding) varies, and they are held to
//! the same key set with weights inside the quantization band.
//!
//! Everything lives in ONE test function on purpose: all tests in a
//! binary share the global rayon pool, and this test resizes it
//! mid-flight.

use lightne::gen::generators::erdos_renyi;
use lightne::hash::{
    pack_key, ConcurrentEdgeTable, EdgeAggregator, ShardedEdgeTable, ThreadLocalAggregator,
};
use lightne::sparsifier::construct::{sample_into, SamplerConfig};
use lightne::utils::parallel::configure_threads;

fn sorted(mut coo: Vec<(u32, u32, f32)>) -> Vec<(u32, u32, f32)> {
    coo.sort_unstable_by_key(|&(u, v, _)| pack_key(u, v));
    coo
}

fn assert_bitwise(a: &[(u32, u32, f32)], b: &[(u32, u32, f32)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: entry counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{what}: key mismatch");
        assert_eq!(
            x.2.to_bits(),
            y.2.to_bits(),
            "{what}: weight bits differ at ({}, {}): {} vs {}",
            x.0,
            x.1,
            x.2,
            y.2
        );
    }
}

#[test]
fn aggregators_agree_at_one_two_and_eight_threads() {
    let g = erdos_renyi(250, 2_500, 123);
    let cfg = SamplerConfig { window: 4, samples: 150_000, seed: 31, ..Default::default() };

    // The drain of the fixed-point tables must be stable across thread
    // counts too; the first iteration's result anchors the comparison.
    let mut reference: Option<Vec<(u32, u32, f32)>> = None;

    for threads in [1usize, 2, 8] {
        assert_eq!(configure_threads(threads), threads);

        let table = ConcurrentEdgeTable::with_expected(1024);
        sample_into(&g, &cfg, &table).unwrap();
        let concurrent = sorted(table.into_coo());

        let table = ShardedEdgeTable::new(g.num_vertices(), 8, 1024);
        sample_into(&g, &cfg, &table).unwrap();
        let sharded = table.into_coo(); // drains already sorted

        // Created after configure_threads so it has one buffer per worker.
        let buffers = ThreadLocalAggregator::new();
        sample_into(&g, &cfg, &buffers).unwrap();
        let local = sorted(buffers.into_coo());

        assert_bitwise(&concurrent, &sharded, &format!("concurrent vs sharded @{threads}t"));

        // Thread-local buffers: identical key set, weights within the
        // fixed-point quantization + f32 merge-order band.
        assert_eq!(concurrent.len(), local.len(), "key sets differ @{threads}t");
        for (x, y) in concurrent.iter().zip(&local) {
            assert_eq!((x.0, x.1), (y.0, y.1), "thread-local key mismatch @{threads}t");
            assert!(
                (x.2 - y.2).abs() < 1e-2 * x.2.abs().max(1.0),
                "thread-local weight off at ({}, {}) @{threads}t: {} vs {}",
                x.0,
                x.1,
                x.2,
                y.2
            );
        }

        match &reference {
            None => reference = Some(concurrent),
            Some(r) => assert_bitwise(r, &concurrent, &format!("thread sweep @{threads}t")),
        }
    }
}
