//! Integration tests of the link-prediction protocol end to end.

use lightne::core::{LightNe, LightNeConfig};
use lightne::eval::linkpred::{rank_held_out, split_edges};
use lightne::gen::profiles::Profile;
use lightne::linalg::DenseMatrix;

#[test]
fn lightne_ranks_held_out_edges_far_above_chance() {
    let data = Profile::LiveJournal.generate(0.0004, 5);
    let (train, held) = split_edges(&data.graph, 0.02, 6);
    assert!(held.len() >= 50, "need enough positives, got {}", held.len());

    let out = LightNe::new(LightNeConfig {
        dim: 32,
        window: 5,
        sample_ratio: 4.0,
        propagation: None,
        ..Default::default()
    })
    .embed(&train);
    let m = rank_held_out(&out.embedding, &held, 100, &[1, 10, 50], 7);

    // Chance: MR ~ 51, HITS@10 ~ 0.10, AUC ~ 0.5.
    assert!(m.mr < 30.0, "MR {} too close to chance", m.mr);
    assert!(m.hits_at(10).unwrap() > 0.3, "HITS@10 {}", m.hits_at(10).unwrap());
    assert!(m.auc > 0.75, "AUC {}", m.auc);

    let random = DenseMatrix::gaussian(train.num_vertices(), 32, 9);
    let chance = rank_held_out(&random, &held, 100, &[10], 7);
    assert!(m.mr + 10.0 < chance.mr, "no margin over chance: {} vs {}", m.mr, chance.mr);
}

#[test]
fn more_samples_improve_ranking_on_web_graph() {
    // Figure 3's monotone trend, coarse version, on the ClueWeb analogue.
    let data = Profile::ClueWebSym.generate(0.000004, 8);
    let (train, held) = split_edges(&data.graph, 0.01, 9);
    assert!(held.len() >= 30);

    let hits10 = |ratio: f64| {
        let out = LightNe::new(LightNeConfig {
            dim: 32,
            window: 2,
            sample_ratio: ratio,
            propagation: None,
            ..Default::default()
        })
        .embed(&train);
        rank_held_out(&out.embedding, &held, 100, &[10], 10).hits_at(10).unwrap()
    };
    let low = hits10(0.25);
    let high = hits10(8.0);
    assert!(high >= low - 0.05, "ranking degraded with 32x the samples: {low} -> {high}");
}

#[test]
fn split_is_deterministic_and_disjoint() {
    let data = Profile::LiveJournal.generate(0.0002, 11);
    let (t1, h1) = split_edges(&data.graph, 0.05, 12);
    let (t2, h2) = split_edges(&data.graph, 0.05, 12);
    assert_eq!(h1, h2);
    assert_eq!(t1, t2);
    for &(u, v) in &h1 {
        assert!(!t1.has_edge(u, v));
    }
}
