//! Cross-crate integration tests: the full embed→evaluate loop, spanning
//! generator, graph substrate, sparsifier, linear algebra, pipeline and
//! evaluation harness.

use lightne::baselines::{ProNe, ProNeConfig};
use lightne::core::{LightNe, LightNeConfig};
use lightne::eval::classify::evaluate_node_classification;
use lightne::gen::sbm::{labelled_sbm, SbmConfig};
use lightne::graph::CompressedGraph;
use lightne::linalg::DenseMatrix;

fn small_labelled() -> (lightne::graph::Graph, lightne::gen::Labels) {
    let cfg = SbmConfig {
        n: 1200,
        communities: 6,
        avg_degree: 24.0,
        mixing: 0.08,
        overlap: 0.1,
        gamma: 2.5,
    };
    labelled_sbm(&cfg, 2024)
}

#[test]
fn lightne_classification_beats_chance_by_wide_margin() {
    let (g, labels) = small_labelled();
    let out = LightNe::new(LightNeConfig {
        dim: 32,
        window: 10,
        sample_ratio: 3.0,
        ..Default::default()
    })
    .embed(&g);
    let f1 = evaluate_node_classification(&out.embedding, &labels, 0.3, 7);

    // Chance baseline: random embedding through the same classifier.
    let random = DenseMatrix::gaussian(g.num_vertices(), 32, 99);
    let chance = evaluate_node_classification(&random, &labels, 0.3, 7);

    assert!(
        f1.micro > chance.micro + 20.0,
        "LightNE micro {} vs chance {}",
        f1.micro,
        chance.micro
    );
    assert!(f1.macro_ > chance.macro_ + 10.0);
}

#[test]
fn propagation_does_not_hurt_classification() {
    // Table 4's qualitative claim: propagation enhances the NetSMF
    // embedding (LightNE > raw factorization on classification).
    let (g, labels) = small_labelled();
    let out = LightNe::new(LightNeConfig {
        dim: 32,
        window: 10,
        sample_ratio: 1.0,
        ..Default::default()
    })
    .embed(&g);
    let with = evaluate_node_classification(&out.embedding, &labels, 0.3, 3);
    let without = evaluate_node_classification(out.initial(), &labels, 0.3, 3);
    assert!(
        with.micro >= without.micro - 2.0,
        "propagation degraded micro-F1: {} -> {}",
        without.micro,
        with.micro
    );
}

#[test]
fn compressed_pipeline_is_bit_compatible() {
    let (g, _) = small_labelled();
    let cg = CompressedGraph::from_graph(&g);
    let cfg = LightNeConfig { dim: 16, window: 5, sample_ratio: 1.0, ..Default::default() };
    let a = LightNe::new(cfg).embed(&g);
    let b = LightNe::new(cfg).embed(&cg);
    assert!(
        a.embedding.max_abs_diff(&b.embedding) < 1e-4,
        "representations disagree: {}",
        a.embedding.max_abs_diff(&b.embedding)
    );
    assert_eq!(a.sampler.trials, b.sampler.trials);
    assert_eq!(a.sampler.kept, b.sampler.kept);
}

#[test]
fn lightne_more_samples_never_much_worse() {
    // Figure 2's monotone trade-off, coarse version: 10x the samples must
    // not lose more than noise-level accuracy.
    let (g, labels) = small_labelled();
    let run = |ratio: f64| {
        let out = LightNe::new(LightNeConfig {
            dim: 32,
            window: 10,
            sample_ratio: ratio,
            ..Default::default()
        })
        .embed(&g);
        evaluate_node_classification(&out.embedding, &labels, 0.3, 11).micro
    };
    let lo = run(0.2);
    let hi = run(4.0);
    assert!(hi > lo - 3.0, "more samples much worse: {lo} -> {hi}");
}

#[test]
fn prone_and_lightne_share_propagation_quality_band() {
    // LightNE-Small vs ProNE+ (Table 4): comparable, LightNE usually a
    // touch better. Allow a small tolerance in either direction — the
    // assertion is that both land in the same band, far above chance.
    let (g, labels) = small_labelled();
    let ln = LightNe::new(LightNeConfig {
        dim: 32,
        window: 10,
        sample_ratio: 0.5,
        ..Default::default()
    })
    .embed(&g);
    let pr = ProNe::new(ProNeConfig { dim: 32, ..Default::default() }).embed(&g);
    let f_ln = evaluate_node_classification(&ln.embedding, &labels, 0.3, 5);
    let f_pr = evaluate_node_classification(&pr.embedding, &labels, 0.3, 5);
    assert!(f_ln.micro > 50.0 && f_pr.micro > 50.0, "ln {} pr {}", f_ln.micro, f_pr.micro);
    assert!(
        (f_ln.micro - f_pr.micro).abs() < 25.0,
        "suspicious gap: LightNE {} vs ProNE+ {}",
        f_ln.micro,
        f_pr.micro
    );
}
