//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning every substrate crate.

use lightne::gen::alias::AliasTable;
use lightne::graph::{CompressedGraph, GraphBuilder};
use lightne::hash::{ConcurrentEdgeTable, EdgeAggregator};
use lightne::linalg::svd::jacobi_svd;
use lightne::linalg::{CsrMatrix, DenseMatrix};
use lightne::utils::parallel::parallel_prefix_sum;
use lightne::utils::rng::XorShiftStream;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction: symmetric, sorted, deduplicated, loop-free, and
    /// degree sums equal the arc count — for any edge list.
    #[test]
    fn graph_builder_invariants(
        n in 2usize..200,
        edges in prop::collection::vec((0u32..200, 0u32..200), 0..400)
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = GraphBuilder::from_edges(n, &edges);
        let mut arc_count = 0usize;
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            arc_count += nb.len();
            // sorted, unique, no self-loop
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nb.contains(&v));
            for &u in nb {
                prop_assert!(g.has_edge(u, v), "asymmetry ({u},{v})");
            }
        }
        prop_assert_eq!(arc_count, g.num_arcs());
        prop_assert_eq!(arc_count % 2, 0);
    }

    /// Parallel-byte compression is lossless for any graph and block size.
    #[test]
    fn compression_roundtrip(
        n in 2usize..150,
        edges in prop::collection::vec((0u32..150, 0u32..150), 0..300),
        block in 1usize..100
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = GraphBuilder::from_edges(n, &edges);
        let c = CompressedGraph::from_graph_with_block_size(&g, block);
        prop_assert_eq!(c.decompress(), g);
    }

    /// Prefix sums match the sequential scan for any input.
    #[test]
    fn prefix_sum_correct(input in prop::collection::vec(0u64..1000, 0..500)) {
        let got = parallel_prefix_sum(&input);
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += v;
        }
        prop_assert_eq!(got[input.len()], acc);
    }

    /// The concurrent hash table agrees with a HashMap reference on any
    /// insertion sequence.
    #[test]
    fn hash_table_matches_reference(
        ops in prop::collection::vec((0u32..50, 0u32..50, 0.0f32..10.0), 1..300)
    ) {
        let table = ConcurrentEdgeTable::with_expected(8);
        let mut reference: HashMap<(u32, u32), f32> = HashMap::new();
        for &(u, v, w) in &ops {
            table.add(u, v, w);
            *reference.entry((u, v)).or_insert(0.0) += w;
        }
        prop_assert_eq!(table.distinct_edges(), reference.len());
        let mut coo = table.into_coo();
        coo.sort_unstable_by_key(|&(u, v, _)| (u, v));
        for (u, v, w) in coo {
            let want = reference[&(u, v)];
            prop_assert!((w - want).abs() <= 1e-3 * want.abs().max(1.0));
        }
    }

    /// CsrMatrix::from_coo sums duplicates exactly like a HashMap.
    #[test]
    fn csr_from_coo_matches_reference(
        coo in prop::collection::vec((0u32..30, 0u32..30, -5.0f32..5.0), 0..200)
    ) {
        let m = CsrMatrix::from_coo(30, 30, coo.clone());
        let mut reference: HashMap<(u32, u32), f32> = HashMap::new();
        for &(r, c, v) in &coo {
            *reference.entry((r, c)).or_insert(0.0) += v;
        }
        prop_assert_eq!(m.nnz(), reference.len());
        for ((r, c), v) in reference {
            prop_assert!((m.get(r as usize, c as usize) - v).abs() < 1e-4);
        }
    }

    /// SPMM distributes over addition: (A + A)·X == 2·(A·X).
    #[test]
    fn spmm_linearity(
        coo in prop::collection::vec((0u32..20, 0u32..20, -2.0f32..2.0), 1..100),
        cols in 1usize..6
    ) {
        let a = CsrMatrix::from_coo(20, 20, coo);
        let x = DenseMatrix::gaussian(20, cols, 3);
        let doubled = a.add(&a, 1.0, 1.0);
        let mut twice = a.spmm(&x);
        twice.scale(2.0);
        let direct = doubled.spmm(&x);
        prop_assert!(direct.max_abs_diff(&twice) < 1e-3);
    }

    /// Jacobi SVD reconstructs any small matrix with orthonormal factors.
    #[test]
    fn jacobi_svd_reconstructs(seed in 0u64..500, n in 2usize..10) {
        let a = DenseMatrix::gaussian(n + 2, n, seed);
        let svd = jacobi_svd(&a);
        let mut us = svd.u.clone();
        us.scale_columns(&svd.sigma);
        let recon = us.matmul(&svd.v.transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-3);
        // singular values sorted and non-negative
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
        prop_assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-5));
    }

    /// Alias tables never emit a zero-weight outcome and always emit a
    /// valid index.
    #[test]
    fn alias_table_support(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..100) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights);
        let mut rng = XorShiftStream::new(seed, 0);
        for _ in 0..200 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {i}");
        }
    }

    /// Weighted graphs: symmetric weights, duplicate summation, volume =
    /// twice the total undirected weight — for any weighted edge list.
    #[test]
    fn weighted_graph_invariants(
        n in 2usize..80,
        edges in prop::collection::vec((0u32..80, 0u32..80, 0.1f32..5.0), 0..200)
    ) {
        use lightne::graph::WeightedGraph;
        let edges: Vec<(u32, u32, f32)> = edges
            .into_iter()
            .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
            .collect();
        let g = WeightedGraph::from_edges(n, &edges);
        // Symmetry of weights.
        for u in 0..n as u32 {
            let (nb, ws) = g.neighbors(u);
            for (&v, &w) in nb.iter().zip(ws) {
                prop_assert!((g.edge_weight(v, u) - w).abs() < 1e-4);
                prop_assert_ne!(v, u, "self-loop survived");
            }
        }
        // Volume = Σ weighted degrees = 2 Σ undirected weights.
        let undirected: f64 = edges
            .iter()
            .filter(|&&(u, v, _)| u != v)
            .map(|&(_, _, w)| w as f64)
            .sum();
        prop_assert!((g.volume() - 2.0 * undirected).abs() < 1e-2 * undirected.max(1.0));
    }

    /// Weighted neighbor sampling only returns actual neighbors.
    #[test]
    fn weighted_sampling_supports_neighbors_only(
        edges in prop::collection::vec((0u32..20, 0u32..20, 0.1f32..3.0), 1..60),
        seed in 0u64..50
    ) {
        use lightne::graph::WeightedGraph;
        let g = WeightedGraph::from_edges(20, &edges);
        let mut rng = XorShiftStream::new(seed, 0);
        for u in 0..20u32 {
            let (nb, _) = g.neighbors(u);
            for _ in 0..20 {
                match g.sample_neighbor(u, &mut rng) {
                    Some(v) => prop_assert!(nb.contains(&v), "non-neighbor {v} sampled from {u}"),
                    None => prop_assert!(nb.is_empty()),
                }
            }
        }
    }

    /// Random-walk endpoints are always reachable vertices of the right
    /// component (they stay within the vertex range and nonzero degree).
    #[test]
    fn walks_stay_in_graph(
        n in 3usize..100,
        edges in prop::collection::vec((0u32..100, 0u32..100), 1..200),
        steps in 0usize..20,
        seed in 0u64..100
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = GraphBuilder::from_edges(n, &edges);
        prop_assume!(g.num_edges() > 0);
        let start = edges.iter().find(|(u, v)| u != v).map(|&(u, _)| u);
        prop_assume!(start.is_some());
        let start = start.unwrap();
        let mut rng = XorShiftStream::new(seed, 1);
        let end = lightne::graph::walk::walk(&g, start, steps, &mut rng);
        prop_assert!((end as usize) < n);
        if steps > 0 {
            prop_assert!(g.degree(end) > 0 || end == start);
        }
    }
}
