//! Randomized property tests on the core data structures and invariants,
//! spanning every substrate crate.
//!
//! Each property runs 64 seeded cases generated from a deterministic
//! [`XorShiftStream`], so failures reproduce exactly (the failing case
//! index is part of the assertion message).

use lightne::gen::alias::AliasTable;
use lightne::graph::{CompressedGraph, GraphBuilder, WeightedGraph};
use lightne::hash::{ConcurrentEdgeTable, EdgeAggregator};
use lightne::linalg::svd::jacobi_svd;
use lightne::linalg::{CsrMatrix, DenseMatrix};
use lightne::utils::parallel::parallel_prefix_sum;
use lightne::utils::rng::XorShiftStream;
use std::collections::HashMap;

const CASES: u64 = 64;

/// Random unweighted edge list over `n` vertices.
fn random_edges(rng: &mut XorShiftStream, n: usize, max_edges: usize) -> Vec<(u32, u32)> {
    let m = rng.bounded_usize(max_edges + 1);
    (0..m).map(|_| (rng.bounded(n as u64) as u32, rng.bounded(n as u64) as u32)).collect()
}

/// Random weighted edge list with weights in `[lo, hi)`.
fn random_weighted_edges(
    rng: &mut XorShiftStream,
    n: usize,
    max_edges: usize,
    lo: f32,
    hi: f32,
) -> Vec<(u32, u32, f32)> {
    let m = rng.bounded_usize(max_edges + 1);
    (0..m)
        .map(|_| {
            (
                rng.bounded(n as u64) as u32,
                rng.bounded(n as u64) as u32,
                lo + rng.unit_f32() * (hi - lo),
            )
        })
        .collect()
}

/// CSR construction: symmetric, sorted, deduplicated, loop-free, and
/// degree sums equal the arc count — for any edge list.
#[test]
fn graph_builder_invariants() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0xA11CE, case);
        let n = 2 + rng.bounded_usize(198);
        let edges = random_edges(&mut rng, n, 400);
        let g = GraphBuilder::from_edges(n, &edges);
        let mut arc_count = 0usize;
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            arc_count += nb.len();
            // sorted, unique, no self-loop
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "case {case}: unsorted/dup");
            assert!(!nb.contains(&v), "case {case}: self-loop at {v}");
            for &u in nb {
                assert!(g.has_edge(u, v), "case {case}: asymmetry ({u},{v})");
            }
        }
        assert_eq!(arc_count, g.num_arcs(), "case {case}");
        assert_eq!(arc_count % 2, 0, "case {case}");
    }
}

/// Parallel-byte compression is lossless for any graph and block size.
#[test]
fn compression_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0xC0DEC, case);
        let n = 2 + rng.bounded_usize(148);
        let edges = random_edges(&mut rng, n, 300);
        let block = 1 + rng.bounded_usize(99);
        let g = GraphBuilder::from_edges(n, &edges);
        let c = CompressedGraph::from_graph_with_block_size(&g, block);
        assert_eq!(c.decompress(), g, "case {case}: block {block}");
    }
}

/// Prefix sums match the sequential scan for any input.
#[test]
fn prefix_sum_correct() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x5CA9, case);
        let len = rng.bounded_usize(500);
        let input: Vec<u64> = (0..len).map(|_| rng.bounded(1000)).collect();
        let got = parallel_prefix_sum(&input);
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(got[i], acc, "case {case}: index {i}");
            acc += v;
        }
        assert_eq!(got[input.len()], acc, "case {case}");
    }
}

/// The concurrent hash table agrees with a HashMap reference on any
/// insertion sequence.
#[test]
fn hash_table_matches_reference() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x7AB1E, case);
        let n_ops = 1 + rng.bounded_usize(299);
        let table = ConcurrentEdgeTable::with_expected(8);
        let mut reference: HashMap<(u32, u32), f32> = HashMap::new();
        for _ in 0..n_ops {
            let u = rng.bounded(50) as u32;
            let v = rng.bounded(50) as u32;
            let w = rng.unit_f32() * 10.0;
            table.add(u, v, w);
            *reference.entry((u, v)).or_insert(0.0) += w;
        }
        assert_eq!(table.distinct_edges(), reference.len(), "case {case}");
        let mut coo = table.into_coo();
        coo.sort_unstable_by_key(|&(u, v, _)| (u, v));
        for (u, v, w) in coo {
            let want = reference[&(u, v)];
            assert!(
                (w - want).abs() <= 1e-3 * want.abs().max(1.0),
                "case {case}: ({u},{v}) got {w} want {want}"
            );
        }
    }
}

/// CsrMatrix::from_coo sums duplicates exactly like a HashMap.
#[test]
fn csr_from_coo_matches_reference() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0xC00, case);
        let m_entries = rng.bounded_usize(200);
        let coo: Vec<(u32, u32, f32)> = (0..m_entries)
            .map(|_| (rng.bounded(30) as u32, rng.bounded(30) as u32, rng.unit_f32() * 10.0 - 5.0))
            .collect();
        let m = CsrMatrix::from_coo(30, 30, coo.clone());
        let mut reference: HashMap<(u32, u32), f32> = HashMap::new();
        for &(r, c, v) in &coo {
            *reference.entry((r, c)).or_insert(0.0) += v;
        }
        assert_eq!(m.nnz(), reference.len(), "case {case}");
        for ((r, c), v) in reference {
            assert!((m.get(r as usize, c as usize) - v).abs() < 1e-4, "case {case}: ({r},{c})");
        }
    }
}

/// SPMM distributes over addition: (A + A)·X == 2·(A·X).
#[test]
fn spmm_linearity() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x59A & 0xFFFF, case);
        let m_entries = 1 + rng.bounded_usize(99);
        let coo: Vec<(u32, u32, f32)> = (0..m_entries)
            .map(|_| (rng.bounded(20) as u32, rng.bounded(20) as u32, rng.unit_f32() * 4.0 - 2.0))
            .collect();
        let cols = 1 + rng.bounded_usize(5);
        let a = CsrMatrix::from_coo(20, 20, coo);
        let x = DenseMatrix::gaussian(20, cols, 3);
        let doubled = a.add(&a, 1.0, 1.0);
        let mut twice = a.spmm(&x);
        twice.scale(2.0);
        let direct = doubled.spmm(&x);
        assert!(direct.max_abs_diff(&twice) < 1e-3, "case {case}");
    }
}

/// Jacobi SVD reconstructs any small matrix with orthonormal factors.
#[test]
fn jacobi_svd_reconstructs() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x54D, case);
        let seed = rng.bounded(500);
        let n = 2 + rng.bounded_usize(8);
        let a = DenseMatrix::gaussian(n + 2, n, seed);
        let svd = jacobi_svd(&a);
        let mut us = svd.u.clone();
        us.scale_columns(&svd.sigma);
        let recon = us.matmul(&svd.v.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-3, "case {case}: n {n} seed {seed}");
        // singular values sorted and non-negative
        assert!(svd.sigma.iter().all(|&s| s >= 0.0), "case {case}");
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-5), "case {case}");
    }
}

/// Alias tables never emit a zero-weight outcome and always emit a valid
/// index.
#[test]
fn alias_table_support() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0xA11A5, case);
        let len = 1 + rng.bounded_usize(49);
        let weights: Vec<f64> = (0..len).map(|_| rng.unit_f64() * 10.0).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let t = AliasTable::new(&weights);
        let mut sample_rng = XorShiftStream::new(rng.bounded(100), 0);
        for _ in 0..200 {
            let i = t.sample(&mut sample_rng);
            assert!(i < weights.len(), "case {case}: index {i} out of range");
            assert!(weights[i] > 0.0, "case {case}: sampled zero-weight outcome {i}");
        }
    }
}

/// Weighted graphs: symmetric weights, duplicate summation, volume =
/// twice the total undirected weight — for any weighted edge list.
#[test]
fn weighted_graph_invariants() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x3197, case);
        let n = 2 + rng.bounded_usize(78);
        let edges = random_weighted_edges(&mut rng, n, 200, 0.1, 5.0);
        let g = WeightedGraph::from_edges(n, &edges);
        // Symmetry of weights.
        for u in 0..n as u32 {
            let (nb, ws) = g.neighbors(u);
            for (&v, &w) in nb.iter().zip(ws) {
                assert!((g.edge_weight(v, u) - w).abs() < 1e-4, "case {case}: ({u},{v})");
                assert_ne!(v, u, "case {case}: self-loop survived");
            }
        }
        // Volume = Σ weighted degrees = 2 Σ undirected weights.
        let undirected: f64 =
            edges.iter().filter(|&&(u, v, _)| u != v).map(|&(_, _, w)| w as f64).sum();
        assert!(
            (g.volume() - 2.0 * undirected).abs() < 1e-2 * undirected.max(1.0),
            "case {case}: volume {} undirected {undirected}",
            g.volume()
        );
    }
}

/// Weighted neighbor sampling only returns actual neighbors.
#[test]
fn weighted_sampling_supports_neighbors_only() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x10_0D, case);
        let edges = random_weighted_edges(&mut rng, 20, 60, 0.1, 3.0);
        if edges.is_empty() {
            continue;
        }
        let g = WeightedGraph::from_edges(20, &edges);
        let mut sample_rng = XorShiftStream::new(rng.bounded(50), 0);
        for u in 0..20u32 {
            let (nb, _) = g.neighbors(u);
            for _ in 0..20 {
                match g.sample_neighbor(u, &mut sample_rng) {
                    Some(v) => {
                        assert!(nb.contains(&v), "case {case}: non-neighbor {v} sampled from {u}")
                    }
                    None => assert!(nb.is_empty(), "case {case}"),
                }
            }
        }
    }
}

/// Random-walk endpoints are always reachable vertices of the right
/// component (they stay within the vertex range and nonzero degree).
#[test]
fn walks_stay_in_graph() {
    for case in 0..CASES {
        let mut rng = XorShiftStream::new(0x3A1F, case);
        let n = 3 + rng.bounded_usize(97);
        let edges = {
            let e = random_edges(&mut rng, n, 200);
            if e.is_empty() {
                continue;
            }
            e
        };
        let g = GraphBuilder::from_edges(n, &edges);
        if g.num_edges() == 0 {
            continue;
        }
        let Some(start) = edges.iter().find(|(u, v)| u != v).map(|&(u, _)| u) else {
            continue;
        };
        let steps = rng.bounded_usize(20);
        let mut walk_rng = XorShiftStream::new(rng.bounded(100), 1);
        let end = lightne::graph::walk::walk(&g, start, steps, &mut walk_rng);
        assert!((end as usize) < n, "case {case}");
        if steps > 0 {
            assert!(g.degree(end) > 0 || end == start, "case {case}");
        }
    }
}
