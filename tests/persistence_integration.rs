//! Integration tests for graph persistence: a graph must survive the
//! text and binary round-trips and embed to identical results afterwards.

use lightne::core::{LightNe, LightNeConfig};
use lightne::gen::generators::chung_lu;
use lightne::graph::io::{read_binary, read_edge_list, write_binary, write_edge_list};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lightne_persist_{}_{name}", std::process::id()));
    p
}

#[test]
fn text_roundtrip_preserves_embedding() {
    let g = chung_lu(800, 8_000, 2.5, 1);
    let path = tmp("graph.txt");
    write_edge_list(&g, &path).unwrap();
    let g2 = read_edge_list(&path, g.num_vertices()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, g2);

    let cfg = LightNeConfig { dim: 8, window: 3, sample_ratio: 1.0, ..Default::default() };
    let a = LightNe::new(cfg).embed(&g);
    let b = LightNe::new(cfg).embed(&g2);
    assert!(a.embedding.max_abs_diff(&b.embedding) < 1e-6);
}

#[test]
fn binary_roundtrip_preserves_everything() {
    let g = chung_lu(2_000, 30_000, 2.3, 2);
    let path = tmp("graph.lne");
    write_binary(&g, &path).unwrap();
    let g2 = read_binary(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, g2);
}

#[test]
fn binary_size_matches_format_specification() {
    // 4 magic + 4 version + 8 n + 8 arcs + 8 checksum
    // + (n+1)·8 offsets + arcs·4 neighbors.
    let g = chung_lu(2_000, 40_000, 2.3, 3);
    let pb = tmp("size.lne");
    write_binary(&g, &pb).unwrap();
    let sb = std::fs::metadata(&pb).unwrap().len() as usize;
    std::fs::remove_file(&pb).ok();
    let expected = 4 + 4 + 8 + 8 + 8 + (g.num_vertices() + 1) * 8 + g.num_arcs() * 4;
    assert_eq!(sb, expected);
}
