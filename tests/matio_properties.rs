//! Property tests for the matrix I/O layer and the artifact store's
//! corruption detection.
//!
//! The serialization property: every dense/COO/CSR round trip is bitwise
//! lossless, over pseudo-random shapes (including empty rows and empty
//! sparse matrices) and adversarial float values (extremes, subnormals,
//! infinities, signed zeros, random bit patterns). NaN is excluded by
//! contract — no finite-computation stage produces one, and text NaN
//! does not preserve payload bits.
//!
//! The integrity property: flipping *any single byte* of *any* v2
//! artifact file is caught as a typed error at load time. FNV-1a makes
//! this exhaustive — each absorbed byte maps the state through a
//! bijection, so no single-byte substitution can collide.

use lightne::core::artifacts::{
    ArtifactStore, RunMeta, INITIAL_FILE, MANIFEST_FILE, META_FILE, META_VERSION, NETMF_FILE,
    SPARSIFIER_FILE,
};
use lightne::linalg::matio;
use lightne::linalg::{CsrMatrix, DenseMatrix};
use lightne::utils::rng::XorShiftStream;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lightne_matprop_{}_{name}", std::process::id()));
    p
}

/// Adversarial float values every round-trip case draws from.
const EXTREMES: &[f32] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    f32::MAX,
    f32::MIN,
    f32::MIN_POSITIVE,
    -f32::MIN_POSITIVE,
    f32::EPSILON,
    f32::INFINITY,
    f32::NEG_INFINITY,
    1.0e-45, // smallest positive subnormal
    -1.0e-45,
    std::f32::consts::PI,
    1.234_567_9e-30,
    9.876_543e30,
];

/// A float that is extreme, random-bit-pattern, or gaussian — never NaN.
fn arb_f32(rng: &mut XorShiftStream) -> f32 {
    match rng.bounded(4) {
        0 => EXTREMES[rng.bounded_usize(EXTREMES.len())],
        1 => {
            let v = f32::from_bits(rng.next_u32());
            if v.is_nan() {
                f32::from_bits(rng.next_u32() & 0x7f7f_ffff) // clear NaN-prone exponent bits
            } else {
                v
            }
        }
        _ => rng.gaussian() as f32,
    }
}

fn assert_bits_eq(a: f32, b: f32, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a:?} != {b:?}");
}

#[test]
fn dense_roundtrip_is_bitwise_for_arbitrary_shapes_and_values() {
    let mut rng = XorShiftStream::new(0xD15E, 0);
    for case in 0..40 {
        let rows = 1 + rng.bounded_usize(12);
        let cols = 1 + rng.bounded_usize(9);
        let data: Vec<f32> = (0..rows * cols).map(|_| arb_f32(&mut rng)).collect();
        let m = DenseMatrix::from_vec(rows, cols, data);
        let bytes = matio::matrix_to_bytes(&m).unwrap();
        let m2 = matio::matrix_from_bytes(&bytes).unwrap();
        assert_eq!((m2.rows(), m2.cols()), (rows, cols), "case {case}: shape lost");
        for (a, b) in m.as_slice().iter().zip(m2.as_slice()) {
            assert_bits_eq(*a, *b, &format!("case {case} ({rows}x{cols})"));
        }
    }
}

#[test]
fn coo_roundtrip_is_bitwise_including_the_empty_list() {
    let mut rng = XorShiftStream::new(0xC00, 1);
    for case in 0..40 {
        let n = 1 + rng.bounded_usize(40);
        let nnz = if case == 0 { 0 } else { rng.bounded_usize(60) };
        let entries: Vec<(u32, u32, f32)> = (0..nnz)
            .map(|_| {
                (rng.bounded(n as u64) as u32, rng.bounded(n as u64) as u32, arb_f32(&mut rng))
            })
            .collect();
        let bytes = matio::coo_to_bytes(n, n, &entries).unwrap();
        let (r, c, got) = matio::coo_from_bytes(&bytes).unwrap();
        assert_eq!((r, c), (n, n), "case {case}: shape lost");
        assert_eq!(got.len(), entries.len(), "case {case}: entry count lost");
        for ((au, av, aw), (bu, bv, bw)) in entries.iter().zip(&got) {
            assert_eq!((au, av), (bu, bv), "case {case}: indices lost");
            assert_bits_eq(*aw, *bw, &format!("case {case}"));
        }
    }
}

#[test]
fn csr_roundtrip_is_bitwise_with_empty_rows_and_empty_matrices() {
    let mut rng = XorShiftStream::new(0xC5A, 2);
    for case in 0..40 {
        let n = 2 + rng.bounded_usize(30);
        // Leave roughly half the rows empty so row-pointer reconstruction
        // over runs of empty rows is always exercised.
        let mut entries: Vec<(u32, u32, f32)> = Vec::new();
        if case != 0 {
            for i in 0..n {
                if rng.bernoulli(0.5) {
                    continue;
                }
                for _ in 0..1 + rng.bounded_usize(3) {
                    entries.push((i as u32, rng.bounded(n as u64) as u32, arb_f32(&mut rng)));
                }
            }
            entries.sort_by_key(|&(r, c, _)| (r, c));
            entries.dedup_by_key(|&mut (r, c, _)| (r, c));
        }
        let m = CsrMatrix::from_coo(n, n, entries);
        let bytes = matio::csr_to_bytes(&m).unwrap();
        let m2 = matio::csr_from_bytes(&bytes).unwrap();
        assert_eq!((m2.n_rows(), m2.n_cols(), m2.nnz()), (n, n, m.nnz()), "case {case}");
        for i in 0..n {
            let (ac, av) = m.row(i);
            let (bc, bv) = m2.row(i);
            assert_eq!(ac, bc, "case {case}: row {i} columns lost");
            for (a, b) in av.iter().zip(bv) {
                assert_bits_eq(*a, *b, &format!("case {case} row {i}"));
            }
        }
    }
}

#[test]
fn any_single_byte_corruption_of_any_artifact_is_caught_at_load() {
    let dir = tmp("corrupt");
    std::fs::remove_dir_all(&dir).ok();

    // A deliberately tiny store so the sweep over every byte of every
    // file stays fast.
    let fingerprint = 0x1234_5678_9abc_def0;
    let store = ArtifactStore::create(&dir, fingerprint).unwrap();
    store
        .save_meta(&RunMeta {
            version: META_VERSION,
            seed: 7,
            fingerprint,
            weighted: false,
            n: 4,
            samples: 100,
            trials: 100,
            kept: 80,
            distinct_entries: 3,
            aggregator_bytes: 64,
            netmf_nnz: Some(3),
        })
        .unwrap();
    store.save_sparsifier(4, &[(0, 1, 1.5), (1, 0, 1.5), (2, 3, 0.25)]).unwrap();
    store.save_netmf(&CsrMatrix::from_coo(4, 4, vec![(0, 1, 0.5), (2, 2, 2.0)])).unwrap();
    store.save_initial(&DenseMatrix::from_vec(4, 2, vec![1.0; 8])).unwrap();

    // Every load succeeds on the pristine store.
    let reader = ArtifactStore::open(&dir);
    reader.load_meta().unwrap();
    reader.load_manifest().unwrap().expect("manifest must exist");
    reader.load_sparsifier().unwrap();
    reader.load_netmf().unwrap();
    reader.load_initial().unwrap();

    type LoadFails = dyn Fn(&ArtifactStore) -> bool;
    let loaders: &[(&str, &LoadFails)] = &[
        (META_FILE, &|s| s.load_meta().is_err()),
        (MANIFEST_FILE, &|s| s.load_manifest().is_err()),
        (SPARSIFIER_FILE, &|s| s.load_sparsifier().is_err()),
        (NETMF_FILE, &|s| s.load_netmf().is_err()),
        (INITIAL_FILE, &|s| s.load_initial().is_err()),
    ];
    for (file, load_fails) in loaders {
        let path = dir.join(file);
        let clean = std::fs::read(&path).unwrap();
        assert!(!clean.is_empty(), "{file} is empty");
        for pos in 0..clean.len() {
            // One low bit, one high bit: substitutions that keep the byte
            // printable and ones that do not.
            for mask in [0x01u8, 0x80] {
                let mut bad = clean.clone();
                bad[pos] ^= mask;
                std::fs::write(&path, &bad).unwrap();
                assert!(
                    load_fails(&reader),
                    "{file}: byte {pos} ^ {mask:#04x} loaded successfully"
                );
            }
        }
        std::fs::write(&path, &clean).unwrap();
        // Growing or truncating the file is caught too.
        let mut longer = clean.clone();
        longer.push(b' ');
        std::fs::write(&path, &longer).unwrap();
        assert!(load_fails(&reader), "{file}: appended byte loaded successfully");
        std::fs::write(&path, &clean[..clean.len() - 1]).unwrap();
        assert!(load_fails(&reader), "{file}: truncated file loaded successfully");
        std::fs::write(&path, &clean).unwrap();
    }

    // And the restored store is whole again.
    reader.load_meta().unwrap();
    reader.load_sparsifier().unwrap();
    reader.load_netmf().unwrap();
    reader.load_initial().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
