//! Integration tests for the stage engine: artifact checkpointing,
//! resume-from-any-boundary reproducibility, metadata validation, and the
//! CLI surface (`--save-artifacts`, `--resume-from`, `--stats-json`).

use lightne::core::artifacts::{
    ArtifactStore, INITIAL_FILE, MANIFEST_FILE, META_FILE, META_VERSION, NETMF_FILE,
    SPARSIFIER_FILE,
};
use lightne::core::pipeline::{STAGE_NETMF, STAGE_PROPAGATION, STAGE_RSVD, STAGE_SPARSIFIER};
use lightne::core::{EngineError, LightNe, LightNeConfig, RunOptions};
use lightne::gen::generators::chung_lu;
use lightne::graph::WeightedGraph;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lightne_engine_{}_{name}", std::process::id()));
    p
}

/// Copies whichever artifact files exist in `from` into a fresh `to`.
fn copy_artifacts(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for f in [META_FILE, MANIFEST_FILE, SPARSIFIER_FILE, NETMF_FILE, INITIAL_FILE] {
        let src = from.join(f);
        if src.is_file() {
            std::fs::copy(&src, to.join(f)).unwrap();
        }
    }
}

fn bits(m: &lightne::linalg::DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn save_opts(dir: &Path) -> RunOptions {
    RunOptions { save_artifacts: Some(dir.to_path_buf()), ..Default::default() }
}

fn resume_opts(dir: &Path) -> RunOptions {
    RunOptions { resume_from: Some(dir.to_path_buf()), ..Default::default() }
}

#[test]
fn resume_from_each_boundary_reproduces_straight_run() {
    let g = chung_lu(500, 4_000, 2.4, 3);
    let pipe = LightNe::new(LightNeConfig {
        dim: 16,
        window: 5,
        sample_ratio: 1.0,
        seed: 7,
        ..Default::default()
    });

    let dir = tmp("full");
    std::fs::remove_dir_all(&dir).ok();
    let straight = pipe.embed_with(&g, save_opts(&dir)).unwrap();
    let want = bits(&straight.embedding);
    for f in [META_FILE, SPARSIFIER_FILE, NETMF_FILE, INITIAL_FILE] {
        assert!(dir.join(f).is_file(), "missing artifact {f}");
    }

    // Boundary 1: only the sparsifier COO — NetMF, rSVD and propagation
    // re-run live.
    let d1 = tmp("sparsifier_only");
    std::fs::remove_dir_all(&d1).ok();
    copy_artifacts(&dir, &d1);
    std::fs::remove_file(d1.join(NETMF_FILE)).unwrap();
    std::fs::remove_file(d1.join(INITIAL_FILE)).unwrap();
    let r1 = pipe.embed_with(&g, resume_opts(&d1)).unwrap();
    assert_eq!(bits(&r1.embedding), want, "resume from sparsifier diverged");
    assert_eq!(r1.stats.get(STAGE_SPARSIFIER).unwrap().counter("resumed"), Some(1));

    // Boundary 2: sparsifier + NetMF matrix — rSVD onward re-runs.
    let d2 = tmp("through_netmf");
    std::fs::remove_dir_all(&d2).ok();
    copy_artifacts(&dir, &d2);
    std::fs::remove_file(d2.join(INITIAL_FILE)).unwrap();
    let r2 = pipe.embed_with(&g, resume_opts(&d2)).unwrap();
    assert_eq!(bits(&r2.embedding), want, "resume from netmf diverged");

    // Boundary 3: everything checkpointed — only propagation re-runs.
    let r3 = pipe.embed_with(&g, resume_opts(&dir)).unwrap();
    assert_eq!(bits(&r3.embedding), want, "resume from initial embedding diverged");
    for kind in [STAGE_SPARSIFIER, STAGE_NETMF, STAGE_RSVD] {
        assert_eq!(
            r3.stats.get(kind).unwrap().counter("resumed"),
            Some(1),
            "stage {kind} should be resumed"
        );
    }
    assert_eq!(r3.stats.get(STAGE_PROPAGATION).unwrap().counter("resumed"), None);

    // Resumed stats still replay the sampler counters from the metadata.
    assert_eq!(
        r3.stats.get(STAGE_SPARSIFIER).unwrap().counter("trials"),
        Some(straight.sampler.trials)
    );

    for d in [&dir, &d1, &d2] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn weighted_resume_reproduces_and_mode_mismatch_is_rejected() {
    let g = chung_lu(300, 2_400, 2.4, 9);
    let gw = WeightedGraph::from_unweighted(&g);
    let pipe = LightNe::new(LightNeConfig {
        dim: 12,
        window: 4,
        sample_ratio: 1.0,
        seed: 11,
        ..Default::default()
    });

    let dir = tmp("weighted");
    std::fs::remove_dir_all(&dir).ok();
    let straight = pipe.embed_weighted_with(&gw, save_opts(&dir)).unwrap();
    let resumed = pipe.embed_weighted_with(&gw, resume_opts(&dir)).unwrap();
    assert_eq!(bits(&straight.embedding), bits(&resumed.embedding));

    // Unweighted run over weighted artifacts must fail loudly.
    let err = pipe.embed_with(&g, resume_opts(&dir)).unwrap_err();
    assert!(err.to_string().contains("weighted"), "unhelpful error: {err}");

    // Seed mismatch is also rejected.
    let other = LightNe::new(LightNeConfig {
        dim: 12,
        window: 4,
        sample_ratio: 1.0,
        seed: 12,
        ..Default::default()
    });
    let err = other.embed_weighted_with(&gw, resume_opts(&dir)).unwrap_err();
    assert!(err.to_string().contains("seed"), "unhelpful error: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_empty_dir_is_an_error() {
    let g = chung_lu(100, 600, 2.4, 5);
    let dir = tmp("empty");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let pipe =
        LightNe::new(LightNeConfig { dim: 8, window: 3, sample_ratio: 1.0, ..Default::default() });
    let err = pipe.embed_with(&g, resume_opts(&dir)).unwrap_err();
    assert!(err.to_string().contains("metadata"), "unhelpful error: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_meta_version_and_fingerprint_mismatches_with_typed_errors() {
    let g = chung_lu(200, 1_400, 2.4, 21);
    let cfg = LightNeConfig { dim: 8, window: 4, sample_ratio: 1.0, seed: 3, ..Default::default() };
    let pipe = LightNe::new(cfg);

    let dir = tmp("misuse");
    std::fs::remove_dir_all(&dir).ok();
    pipe.embed_with(&g, save_opts(&dir)).unwrap();

    // A run with different embedding parameters must refuse the
    // artifacts outright — the checkpointed state is not its own.
    let other = LightNe::new(LightNeConfig { window: 5, ..cfg });
    let err = other.embed_with(&g, resume_opts(&dir)).unwrap_err();
    assert!(
        matches!(err, EngineError::FingerprintMismatch { .. }),
        "expected FingerprintMismatch, got: {err}"
    );
    assert!(err.to_string().contains("fingerprint"), "unhelpful error: {err}");

    // A store whose metadata claims an unsupported format version is a
    // typed error, not a parse failure.
    let store = ArtifactStore::open(&dir);
    let mut meta = store.load_meta().unwrap();
    meta.version = META_VERSION - 1;
    ArtifactStore::attach(&dir, meta.fingerprint).save_meta(&meta).unwrap();
    let err = pipe.embed_with(&g, resume_opts(&dir)).unwrap_err();
    match err {
        EngineError::MetaVersion { found, supported } => {
            assert_eq!(found, META_VERSION - 1);
            assert_eq!(supported, META_VERSION);
        }
        other => panic!("expected MetaVersion, got: {other}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn save_artifacts_refuses_directories_with_foreign_files() {
    let g = chung_lu(100, 600, 2.4, 8);
    let dir = tmp("foreign");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("notes.txt"), "do not clobber me").unwrap();
    let pipe =
        LightNe::new(LightNeConfig { dim: 8, window: 3, sample_ratio: 1.0, ..Default::default() });
    let err = pipe.embed_with(&g, save_opts(&dir)).unwrap_err();
    assert!(matches!(err, EngineError::ArtifactDir(_)), "expected ArtifactDir error, got: {err}");
    assert!(err.to_string().contains("notes.txt"), "unhelpful error: {err}");
    // The foreign file survives the refused create.
    assert!(dir.join("notes.txt").is_file());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_store_is_reset_and_resume_plus_save_shares_one_directory() {
    let g = chung_lu(200, 1_400, 2.4, 17);
    let cfg = LightNeConfig { dim: 8, window: 3, sample_ratio: 1.0, seed: 2, ..Default::default() };
    let pipe = LightNe::new(cfg);

    // Saving twice into the same directory works: the second create
    // resets the stale (recognized) store files.
    let dir = tmp("reset");
    std::fs::remove_dir_all(&dir).ok();
    let a = pipe.embed_with(&g, save_opts(&dir)).unwrap();
    let b = pipe.embed_with(&g, save_opts(&dir)).unwrap();
    assert_eq!(bits(&a.embedding), bits(&b.embedding));

    // Resume and save through the *same* directory: the store must not
    // be reset out from under the resume.
    let both = RunOptions {
        save_artifacts: Some(dir.clone()),
        resume_from: Some(dir.clone()),
        ..Default::default()
    };
    let c = pipe.embed_with(&g, both).unwrap();
    assert_eq!(bits(&a.embedding), bits(&c.embedding));
    assert_eq!(c.stats.get(STAGE_RSVD).unwrap().counter("resumed"), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifact_degrades_by_default_and_fails_under_strict_resume() {
    let g = chung_lu(300, 2_000, 2.4, 31);
    let cfg = LightNeConfig { dim: 8, window: 4, sample_ratio: 1.0, seed: 6, ..Default::default() };
    let pipe = LightNe::new(cfg);

    let dir = tmp("degrade");
    std::fs::remove_dir_all(&dir).ok();
    let straight = pipe.embed_with(&g, save_opts(&dir)).unwrap();
    let want = bits(&straight.embedding);

    // Flip one byte in the deepest artifact (the initial embedding).
    let path = dir.join(INITIAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    // Default resume degrades to the NetMF checkpoint, records the
    // fallback, and still reproduces the straight run byte for byte.
    let r = pipe.embed_with(&g, resume_opts(&dir)).unwrap();
    assert_eq!(bits(&r.embedding), want, "degraded resume diverged");
    assert!(
        r.stats.resume_fallbacks.iter().any(|f| f.contains(INITIAL_FILE)),
        "fallback not recorded: {:?}",
        r.stats.resume_fallbacks
    );
    assert_eq!(r.stats.get(STAGE_NETMF).unwrap().counter("resumed"), Some(1));

    // The fallback also lands in the stats JSON.
    assert!(
        r.stats.to_json().contains("resume_fallbacks"),
        "stats json missing resume_fallbacks:\n{}",
        r.stats.to_json()
    );

    // Strict resume turns the same corruption into a typed error.
    let strict =
        RunOptions { resume_from: Some(dir.clone()), strict_resume: true, ..Default::default() };
    let err = pipe.embed_with(&g, strict).unwrap_err();
    match &err {
        EngineError::Corrupt { file, .. } => assert_eq!(file, INITIAL_FILE),
        other => panic!("expected Corrupt, got: {other}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_embed_writes_stats_json_and_resumes_byte_identically() {
    // A small text edge list drives the CLI end to end.
    let g = chung_lu(200, 1_400, 2.4, 13);
    let graph_path = tmp("cli_graph.txt");
    lightne::graph::io::write_edge_list(&g, &graph_path).unwrap();
    let emb_a = tmp("cli_a.emb");
    let emb_b = tmp("cli_b.emb");
    let stats_path = tmp("cli_stats.json");
    let art_dir = tmp("cli_artifacts");
    std::fs::remove_dir_all(&art_dir).ok();

    let run = |args: &[&str]| -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        lightne::cli::run(&args, &mut out).expect("cli run failed");
        String::from_utf8(out).unwrap()
    };

    let graph = graph_path.to_str().unwrap();
    let captured = run(&[
        "embed",
        "--graph",
        graph,
        "--out",
        emb_a.to_str().unwrap(),
        "--dim",
        "8",
        "--window",
        "3",
        "--ratio",
        "1.0",
        "--seed",
        "5",
        "--threads",
        "2",
        "--stats-json",
        stats_path.to_str().unwrap(),
        "--save-artifacts",
        art_dir.to_str().unwrap(),
    ]);
    assert!(captured.contains("threads:"), "missing threads line:\n{captured}");
    assert!(captured.contains("sampler:"), "missing sampler line:\n{captured}");

    // The stats JSON carries per-stage wall time, heap bytes and counters.
    let json = std::fs::read_to_string(&stats_path).unwrap();
    for needle in [
        "\"seed\": 5",
        "\"threads\":",
        "\"stages\"",
        "\"secs\":",
        "\"heap_bytes\":",
        "\"trials\":",
        STAGE_SPARSIFIER,
        STAGE_RSVD,
        STAGE_PROPAGATION,
    ] {
        assert!(json.contains(needle), "stats json missing {needle}:\n{json}");
    }

    // Resuming from the CLI-written artifacts reproduces the exact file.
    let captured = run(&[
        "embed",
        "--graph",
        graph,
        "--out",
        emb_b.to_str().unwrap(),
        "--dim",
        "8",
        "--window",
        "3",
        "--ratio",
        "1.0",
        "--seed",
        "5",
        "--resume-from",
        art_dir.to_str().unwrap(),
    ]);
    assert!(captured.contains("wrote"), "no output written:\n{captured}");
    let a = std::fs::read(&emb_a).unwrap();
    let b = std::fs::read(&emb_b).unwrap();
    assert_eq!(a, b, "resumed CLI run produced a different embedding file");

    for f in [&graph_path, &emb_a, &emb_b, &stats_path] {
        std::fs::remove_file(f).ok();
    }
    std::fs::remove_dir_all(&art_dir).ok();
}
