//! End-to-end byte-identity of the pipeline across graph representations.
//!
//! The whole pipeline is generic over [`lightne::graph::GraphAccess`], and
//! every sampling decision is keyed on arc indices — so the uncompressed
//! CSR, the v1 parallel-byte compressed graph, and the v2 container
//! (owned or memory-mapped) must produce *bit-identical* embeddings. This
//! exercises the claim through the full pipeline (sampling, fused NetMF
//! drain, randomized SVD, spectral propagation) on two generator profiles
//! with different degree structure.
//!
//! Everything lives in ONE test function on purpose: all tests in a
//! binary share the global rayon pool, and byte-identity claims must not
//! race with a pool resize from a sibling test.

use lightne::core::pipeline::STAGE_SPARSIFIER;
use lightne::core::{LightNe, LightNeConfig};
use lightne::gen::profiles::Profile;
use lightne::graph::{Codec, CompressedGraph, V2Graph};

fn bits(m: &lightne::linalg::DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lightne_formats_{}_{name}", std::process::id()));
    p
}

#[test]
fn all_graph_representations_embed_bit_identically() {
    // Two profiles with different shapes: the scale-free OAG citation
    // analogue and the denser BlogCatalog social analogue.
    for (profile, scale) in [(Profile::Oag, 0.0001), (Profile::BlogCatalog, 0.02)] {
        let g = profile.generate(scale, 11).graph;
        let cfg =
            LightNeConfig { dim: 12, window: 4, sample_ratio: 1.5, seed: 9, ..Default::default() };

        let reference = LightNe::new(cfg).embed(&g);
        let want = bits(&reference.embedding);

        // v1: parallel-byte compressed.
        let v1 = CompressedGraph::from_graph(&g);
        let out = LightNe::new(cfg).embed(&v1);
        assert_eq!(want, bits(&out.embedding), "{profile:?}: v1 diverges from CSR");

        // v2 owned, across codecs (the arena layout must not leak into
        // the sampled stream).
        for codec in [Codec::Gamma, Codec::Zeta(3)] {
            let v2 = V2Graph::from_graph(&g, codec);
            let out = LightNe::new(cfg).embed(&v2);
            assert_eq!(
                want,
                bits(&out.embedding),
                "{profile:?}: v2/{} diverges from CSR",
                codec.name()
            );
        }

        // v2 memory-mapped from disk: same bytes, zero resident heap for
        // the adjacency — which the engine reports as stage heap.
        let path = tmp(&format!("{profile:?}.lng2"));
        V2Graph::write(&g, Codec::Zeta(3), 64, &path).unwrap();
        let mapped = V2Graph::open_mmap(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.resident_bytes(), 0);
        let out_mapped = LightNe::new(cfg).embed(&mapped);
        assert_eq!(want, bits(&out_mapped.embedding), "{profile:?}: mmap v2 diverges from CSR");

        let owned = V2Graph::open(&path).unwrap();
        assert!(owned.resident_bytes() > 0);
        let out_owned = LightNe::new(cfg).embed(&owned);
        std::fs::remove_file(&path).ok();

        let graph_bytes = |o: &lightne::core::LightNeOutput| {
            o.stats.get(STAGE_SPARSIFIER).unwrap().counter("graph_bytes").unwrap()
        };
        assert_eq!(graph_bytes(&out_mapped), 0, "mapped container must report no heap");
        assert_eq!(graph_bytes(&out_owned), owned.resident_bytes() as u64);
        assert!(
            graph_bytes(&reference) >= (g.num_arcs() * 4) as u64,
            "CSR source must account for its neighbor array"
        );
    }
}
