//! Integration tests for the beyond-the-paper extensions: dynamic
//! embedding, weighted pipelines, spectral-gap estimation and the
//! clustering probe — exercised together the way a downstream user would.

use lightne::core::spectral::estimate_spectral_gap;
use lightne::core::{DynamicLightNe, LightNe, LightNeConfig};
use lightne::eval::clustering::{kmeans, nmi};
use lightne::gen::sbm::{labelled_sbm, SbmConfig};
use lightne::graph::WeightedGraph;

fn sbm(n: usize, k: usize, seed: u64) -> (lightne::graph::Graph, lightne::gen::Labels) {
    let cfg =
        SbmConfig { n, communities: k, avg_degree: 22.0, mixing: 0.06, overlap: 0.0, gamma: 2.5 };
    labelled_sbm(&cfg, seed)
}

#[test]
fn kmeans_on_lightne_embedding_recovers_communities() {
    let (g, labels) = sbm(900, 5, 1);
    let out = LightNe::new(LightNeConfig {
        dim: 16,
        window: 10,
        sample_ratio: 3.0,
        ..Default::default()
    })
    .embed(&g);

    let clusters = kmeans(&out.embedding, 5, 100, 2);
    let truth: Vec<u32> = (0..900).map(|v| labels.of(v)[0] as u32).collect();
    let score = nmi(&clusters.assignment, &truth);
    assert!(score > 0.7, "NMI {score} too low — embedding lost community structure");

    // Random embedding control: clustering noise scores near zero.
    let random = lightne::linalg::DenseMatrix::gaussian(900, 16, 3);
    let noise = kmeans(&random, 5, 100, 2);
    let noise_score = nmi(&noise.assignment, &truth);
    assert!(score > noise_score + 0.5, "no margin over noise: {score} vs {noise_score}");
}

#[test]
fn spectral_gap_tracks_community_mixing() {
    // Strong community structure *is* a small spectral gap (λ₂ near 1):
    // the community indicator eigendirections mix slowly. The estimator
    // must rank a well-mixed SBM far above a strongly-clustered one —
    // exactly the distinction a user needs before trusting Theorem 3.2's
    // degree-based downsampling bound.
    let make = |mixing: f64, seed: u64| {
        let cfg = SbmConfig {
            n: 800,
            communities: 4,
            avg_degree: 22.0,
            mixing,
            overlap: 0.0,
            gamma: 2.5,
        };
        labelled_sbm(&cfg, seed).0
    };
    let clustered = estimate_spectral_gap(&make(0.05, 4), 200, 5);
    let mixed = estimate_spectral_gap(&make(0.6, 4), 200, 5);
    assert!(
        mixed.gap > 3.0 * clustered.gap,
        "estimator failed to separate mixed (gap {}) from clustered (gap {})",
        mixed.gap,
        clustered.gap
    );
    assert!(clustered.gap > 0.0 && mixed.gap < 2.0);
}

#[test]
fn dynamic_embedder_tracks_quality_through_growth() {
    let (g, labels) = sbm(700, 5, 6);
    let mut edges = Vec::new();
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    let cfg = LightNeConfig { dim: 16, window: 5, sample_ratio: 2.0, ..Default::default() };
    let mut dyn_ne = DynamicLightNe::new(700, cfg);

    // Three growth phases; quality should improve (or hold) as the graph
    // completes.
    let cuts = [edges.len() / 2, edges.len() * 3 / 4, edges.len()];
    let mut prev_f1 = 0.0;
    let mut start = 0usize;
    for (phase, &cut) in cuts.iter().enumerate() {
        dyn_ne.insert_edges(&edges[start..cut]);
        start = cut;
        let out = dyn_ne.reembed();
        let f1 =
            lightne::eval::classify::evaluate_node_classification(&out.embedding, &labels, 0.3, 7);
        assert!(
            f1.micro > prev_f1 - 10.0,
            "phase {phase}: quality collapsed {prev_f1} -> {}",
            f1.micro
        );
        prev_f1 = f1.micro;
    }
    assert!(prev_f1 > 60.0, "final quality {prev_f1}");
}

#[test]
fn weighted_pipeline_uses_weights_not_just_topology() {
    // Random topology; the only community signal is in the weights.
    use lightne::utils::rng::XorShiftStream;
    let n = 400usize;
    let half = n / 2;
    let mut rng = XorShiftStream::new(8, 0);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    for _ in 0..n * 12 {
        let u = rng.bounded_usize(n) as u32;
        let v = rng.bounded_usize(n) as u32;
        if u != v {
            let same = (u as usize) / half == (v as usize) / half;
            edges.push((u, v, if same { 8.0 } else { 1.0 }));
        }
    }
    let g = WeightedGraph::from_edges(n, &edges);
    let out =
        LightNe::new(LightNeConfig { dim: 8, window: 5, sample_ratio: 5.0, ..Default::default() })
            .embed_weighted(&g);

    let truth: Vec<u32> = (0..n).map(|v| (v / half) as u32).collect();
    let clusters = kmeans(&out.embedding, 2, 100, 9);
    let score = nmi(&clusters.assignment, &truth);
    assert!(score > 0.6, "weighted signal not captured: NMI {score}");
}
