//! Property tests pinning the register-blocked kernels (packed GEMM,
//! panel BCGS2 QR, blocked round-robin Jacobi SVD, cache-blocked
//! transpose) against the pre-blocking naive implementations kept in
//! [`lightne::linalg::reference`].
//!
//! The blocked kernels use different summation bracketing than the naive
//! loops, so results match up to f32 rounding, not bitwise — except the
//! transpose, which only moves values. Shapes deliberately straddle the
//! tile boundaries of the packed GEMM (MR = 4, NR = 16, KC = 256,
//! MC = 128) and the QR panel width (16), where packing tail handling
//! lives.

use lightne::linalg::qr::orthonormalize_columns;
use lightne::linalg::simd::{detected_tier, set_tier, SimdTier};
use lightne::linalg::svd::jacobi_svd;
use lightne::linalg::{reference, DenseMatrix};

/// Absolute tolerance for comparing two f32 summations of `k` products
/// of unit-scale gaussians (error grows like `k·ε·√k`, this is ~25×
/// slack over that).
fn sum_tol(k: usize) -> f32 {
    1e-3 * (k.max(1) as f32).sqrt()
}

#[test]
fn packed_gemm_matches_reference_at_tile_boundaries() {
    // (m, k, n) straddling MR (4), NR (16), KC (256) and MC (128) ± 1,
    // plus degenerate shapes.
    let shapes = [
        (0usize, 8usize, 8usize),
        (8, 0, 8),
        (8, 8, 0),
        (1, 1, 1),
        (3, 5, 15),
        (4, 5, 16),
        (5, 5, 17),
        (127, 255, 15),
        (128, 256, 16),
        (129, 257, 17),
    ];
    for (m, k, n) in shapes {
        let a = DenseMatrix::gaussian(m, k, 11 + (m + k + n) as u64);
        let b = DenseMatrix::gaussian(k, n, 13 + (m * 31 + n) as u64);
        let blocked = a.matmul(&b);
        let naive = reference::matmul(&a, &b);
        assert_eq!(blocked.rows(), m);
        assert_eq!(blocked.cols(), n);
        let diff = blocked.max_abs_diff(&naive);
        assert!(diff <= sum_tol(k), "({m}x{k})·({k}x{n}): diff {diff} > {}", sum_tol(k));
    }
}

/// Serializes the tests that flip the process-global dispatch tier:
/// without it, two tier-forcing tests racing on `set_tier` could take a
/// "scalar" baseline on a vector tier. (The reference-comparison tests
/// don't need the lock — they hold to tolerance on every tier.)
static TIER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` once per SIMD tier the host can execute beyond scalar,
/// handing it the tier; restores the detected tier afterwards. Skips
/// silently on scalar-only hardware — the dispatch tests then reduce to
/// "scalar equals scalar", which `kernel_determinism.rs` already pins.
fn for_each_simd_tier(mut f: impl FnMut(SimdTier)) {
    for tier in [SimdTier::Avx2, SimdTier::Avx512] {
        if set_tier(tier) == tier {
            f(tier);
        }
    }
    set_tier(detected_tier());
}

#[test]
fn simd_gemm_matches_scalar_at_tile_boundaries() {
    let _serial = TIER_LOCK.lock().unwrap();
    // The SIMD micro-kernels contract mul+add into FMA, so GEMM matches
    // the scalar tier to summation tolerance, not bitwise (the one
    // documented divergence — see lightne_linalg::simd). Shapes straddle
    // the MR/NR/KC/MC boundaries where the ragged-edge tiles (always
    // computed by the scalar `tile_acc` oracle on every tier) meet the
    // vectorized full tiles, plus the AVX-512 paired-strip boundary
    // (n = 2·NR ± strip).
    let shapes = [
        (3usize, 5usize, 15usize),
        (4, 5, 16),
        (5, 5, 17),
        (8, 300, 32),
        (9, 300, 48),
        (127, 255, 15),
        (128, 256, 16),
        (129, 257, 17),
        (130, 258, 33),
    ];
    for (m, k, n) in shapes {
        let a = DenseMatrix::gaussian(m, k, 211 + (m + k + n) as u64);
        let b = DenseMatrix::gaussian(k, n, 223 + (m * 31 + n) as u64);
        set_tier(SimdTier::Scalar);
        let scalar = a.matmul(&b);
        for_each_simd_tier(|tier| {
            let vectored = a.matmul(&b);
            let diff = vectored.max_abs_diff(&scalar);
            assert!(
                diff <= sum_tol(k),
                "({m}x{k})·({k}x{n}) on {}: diff {diff} > {}",
                tier.name(),
                sum_tol(k)
            );
        });
    }
}

#[test]
fn simd_qr_and_jacobi_match_scalar_bitwise() {
    let _serial = TIER_LOCK.lock().unwrap();
    // Everything except GEMM keeps scalar evaluation order on the SIMD
    // tiers (f32→f64 widening makes `fmadd_pd` exact; the elementwise
    // kernels use separate mul+add), so QR and the Jacobi SVD are
    // *bitwise* identical across dispatch paths. 20 columns straddles
    // the QR panel width (16); 37 columns exercises the rot2/gram2
    // 4-lane and GRAM_LANES tails.
    let x = DenseMatrix::gaussian(1000, 20, 97);
    let j = DenseMatrix::gaussian(48, 37, 98);
    set_tier(SimdTier::Scalar);
    let mut q_scalar = x.clone();
    orthonormalize_columns(&mut q_scalar);
    let svd_scalar = jacobi_svd(&j);
    for_each_simd_tier(|tier| {
        let mut q = x.clone();
        orthonormalize_columns(&mut q);
        for (a, b) in q.as_slice().iter().zip(q_scalar.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "QR bytes differ on {}", tier.name());
        }
        let svd = jacobi_svd(&j);
        for (a, b) in svd.sigma.iter().zip(&svd_scalar.sigma) {
            assert_eq!(a.to_bits(), b.to_bits(), "sigma bytes differ on {}", tier.name());
        }
        for (a, b) in svd.u.as_slice().iter().zip(svd_scalar.u.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "U bytes differ on {}", tier.name());
        }
    });
}

#[test]
fn packed_gemm_no_longer_skips_explicit_zeros() {
    // The reference kernel had an `a != 0.0` branch; the packed kernel
    // must produce the same result on zero-heavy inputs (including the
    // -0.0 sign bit, which `x + (-0.0 * y)` preserves as +0.0 only if
    // the multiply actually happens — both paths agree on the value).
    let mut a = DenseMatrix::zeros(9, 20);
    a.set(0, 0, -0.0);
    a.set(4, 17, 2.5);
    a.set(8, 19, -1.0);
    let b = DenseMatrix::gaussian(20, 18, 3);
    let blocked = a.matmul(&b);
    let naive = reference::matmul(&a, &b);
    assert!(blocked.max_abs_diff(&naive) <= sum_tol(20));
}

#[test]
fn blocked_transpose_matches_naive_bitwise() {
    // Transpose only moves values — bitwise equality at shapes around
    // the 32×32 tile boundary, including empty and single-row shapes.
    for (m, n) in [(0usize, 5usize), (5, 0), (1, 1), (31, 33), (32, 32), (33, 31), (100, 7)] {
        let a = DenseMatrix::gaussian(m, n, 41 + (m * 101 + n) as u64);
        let t = a.transpose();
        assert_eq!(t.rows(), n);
        assert_eq!(t.cols(), m);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(a.get(i, j).to_bits(), t.get(j, i).to_bits(), "({m}x{n}) at {i},{j}");
            }
        }
        // Round trip is the identity, bitwise.
        let rt = t.transpose();
        for (x, y) in a.as_slice().iter().zip(rt.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn panel_qr_matches_reference_rank_and_span() {
    // Column counts around the QR panel width (16) ± 1; the panel QR and
    // the sequential reference MGS must agree on rank, produce
    // orthonormal columns, and span the same subspace.
    for d in [1usize, 15, 16, 17, 33] {
        let orig = DenseMatrix::gaussian(400, d, 7 + d as u64);
        let mut q_blocked = orig.clone();
        let mut q_ref = orig.clone();
        let rank_blocked = orthonormalize_columns(&mut q_blocked);
        let rank_ref = reference::orthonormalize_columns(&mut q_ref);
        assert_eq!(rank_blocked, rank_ref, "d={d}: rank mismatch");
        assert_eq!(rank_blocked, d);

        let gram = q_blocked.gram_tn(&q_blocked);
        for i in 0..d {
            for j in 0..d {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (gram.get(i, j) - want).abs() < 5e-5,
                    "d={d}: gram[{i},{j}]={}",
                    gram.get(i, j)
                );
            }
        }
        // Same span: Q (Qᵀ X) reconstructs X.
        let coeff = q_blocked.gram_tn(&orig);
        let recon = q_blocked.matmul(&coeff);
        let diff = recon.max_abs_diff(&orig);
        assert!(diff < 1e-3, "d={d}: span error {diff}");
    }
}

#[test]
fn panel_qr_rank_deficiency_matches_reference() {
    // A dependency spanning the panel boundary: column 18 = column 1 +
    // column 2, with d = 20 > QR_PANEL = 16. Both implementations must
    // report the same rank and zero the same column.
    let d = 20;
    let g = DenseMatrix::gaussian(300, d, 19);
    let mut x = g.clone();
    for i in 0..300 {
        x.set(i, 18, g.get(i, 1) + g.get(i, 2));
    }
    let mut q_blocked = x.clone();
    let mut q_ref = x.clone();
    assert_eq!(orthonormalize_columns(&mut q_blocked), d - 1);
    assert_eq!(reference::orthonormalize_columns(&mut q_ref), d - 1);
    for i in 0..300 {
        assert_eq!(q_blocked.get(i, 18), 0.0);
        assert_eq!(q_ref.get(i, 18), 0.0);
    }
}

#[test]
fn blocked_jacobi_matches_reference_singular_values() {
    // Sweep orders differ (round-robin vs cyclic), but both converge to
    // the same singular values; adversarial cases: odd n (dummy slot),
    // 1×1, rank-deficient, tall.
    for (m, n, seed) in [(1usize, 1usize, 1u64), (7, 7, 2), (16, 16, 3), (40, 33, 4), (48, 48, 5)] {
        let a = DenseMatrix::gaussian(m, n, seed);
        let blocked = jacobi_svd(&a);
        let naive = reference::jacobi_svd(&a);
        assert_eq!(blocked.sigma.len(), naive.sigma.len());
        for (i, (x, y)) in blocked.sigma.iter().zip(&naive.sigma).enumerate() {
            assert!(
                (x - y).abs() < 1e-3 * y.max(1.0),
                "{m}x{n} seed {seed}: sigma[{i}] {x} vs {y}"
            );
        }
        // Both must reconstruct the input.
        let mut us = blocked.u.clone();
        us.scale_columns(&blocked.sigma);
        let recon = us.matmul(&blocked.v.transpose());
        let diff = recon.max_abs_diff(&a);
        assert!(diff < 1e-3, "{m}x{n} seed {seed}: reconstruction error {diff}");
    }
}

#[test]
fn blocked_jacobi_rank_deficient_matches_reference() {
    // Rank-2 matrix embedded in 12 columns: trailing singular values are
    // zero in both implementations.
    let base = DenseMatrix::gaussian(30, 2, 6);
    let mix = DenseMatrix::gaussian(2, 12, 7);
    let a = base.matmul(&mix);
    let blocked = jacobi_svd(&a);
    let naive = reference::jacobi_svd(&a);
    for i in 0..2 {
        assert!(
            (blocked.sigma[i] - naive.sigma[i]).abs() < 1e-2 * naive.sigma[i].max(1.0),
            "sigma[{i}]: {} vs {}",
            blocked.sigma[i],
            naive.sigma[i]
        );
    }
    for i in 2..12 {
        assert!(blocked.sigma[i] < 1e-3 * blocked.sigma[0], "sigma[{i}] not ~0");
    }
}
