//! End-to-end byte-identity of the sharded data path.
//!
//! The sharded sparsify→drain→CSR path (`--shards`, the default) and the
//! legacy global-table path (`--global-table`) must produce bit-identical
//! embeddings at every (threads, shards) combination — the three facts
//! behind the argument live in `lightne_sparsifier::sharded`'s module
//! docs. This exercises the claim through the full pipeline: sampling,
//! fused NetMF drain, randomized SVD, and spectral propagation, for both
//! the unweighted and weighted sources.
//!
//! Everything lives in ONE test function on purpose: all tests in a
//! binary share the global rayon pool, and this test resizes it
//! mid-flight.

use lightne::core::pipeline::STAGE_SPARSIFIER;
use lightne::core::{LightNe, LightNeConfig};
use lightne::gen::generators::erdos_renyi;
use lightne::graph::WeightedGraph;
use lightne::utils::parallel::configure_threads;

fn bits(m: &lightne::linalg::DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn sharded_path_matches_global_table_bitwise() {
    let g = erdos_renyi(400, 4_000, 2024);
    let gw = WeightedGraph::from_unweighted(&g);
    let base =
        LightNeConfig { dim: 16, window: 5, sample_ratio: 2.0, seed: 7, ..Default::default() };

    // Reference: the legacy global-table path on the default pool.
    let global = LightNe::new(LightNeConfig { global_table: true, ..base }).embed(&g);
    let global_w = LightNe::new(LightNeConfig { global_table: true, ..base }).embed_weighted(&gw);
    assert!(
        global.stats.get(STAGE_SPARSIFIER).unwrap().counter("shards").is_none(),
        "global-table path must not report shard counters"
    );

    for threads in [1usize, 2, 8] {
        assert_eq!(configure_threads(threads), threads);
        for shards in [0usize, 1, 4, 32] {
            let out = LightNe::new(LightNeConfig { shards, ..base }).embed(&g);
            assert_eq!(
                bits(&global.embedding),
                bits(&out.embedding),
                "unweighted bytes diverge at threads={threads} shards={shards}"
            );
            // The sharded stage surfaces its fill/resize counters.
            let sp = out.stats.get(STAGE_SPARSIFIER).unwrap();
            let n_shards = sp.counter("shards").expect("sharded path reports shard count");
            assert!(n_shards >= 1);
            if shards != 0 {
                // Range rounding can merge trailing shards, never split.
                assert!(n_shards <= shards as u64, "{n_shards} > {shards}");
            }
            assert!(sp.counter("shard_resizes").is_some());
            assert!(sp.counter("shard_distinct_max").unwrap() >= 1);
        }

        let out_w = LightNe::new(LightNeConfig { shards: 4, ..base }).embed_weighted(&gw);
        assert_eq!(
            bits(&global_w.embedding),
            bits(&out_w.embedding),
            "weighted bytes diverge at threads={threads}"
        );
    }
}
